// Tests for the sparsification substrate: strength estimation, weighted cut
// sparsifiers, deferred sparsifiers (Definition 4 / Lemma 17) and the cut
// evaluation utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "sparsify/cut_eval.hpp"
#include "sparsify/cut_sparsifier.hpp"
#include "sparsify/deferred.hpp"
#include "sparsify/strength.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp {
namespace {

std::vector<double> unit_weights(const Graph& g) {
  return std::vector<double>(g.num_edges(), 1.0);
}

TEST(Strength, BridgeIsWeakCliqueIsStrong) {
  // Two K8 cliques joined by one bridge.
  Graph g(16);
  for (Vertex i = 0; i < 8; ++i) {
    for (Vertex j = i + 1; j < 8; ++j) {
      g.add_edge(i, j);
      g.add_edge(i + 8, j + 8);
    }
  }
  g.add_edge(0, 8);  // bridge, last edge
  const auto strength = estimate_strengths(16, g.edges(), 5);
  const double bridge = strength.back();
  double clique_avg = 0;
  for (std::size_t e = 0; e + 1 < strength.size(); ++e) {
    clique_avg += strength[e];
  }
  clique_avg /= static_cast<double>(strength.size() - 1);
  EXPECT_GT(clique_avg, bridge);
  for (double s : strength) EXPECT_GE(s, 1.0);
}

/// Several disjoint random blobs plus isolated vertices — the shape the
/// level-0 region split partitions into vertex-disjoint buckets.
Graph disconnected_blobs(std::size_t blobs, std::size_t blob_n,
                         std::size_t blob_m, std::uint64_t seed) {
  Graph g(blobs * blob_n + 3);  // three isolated vertices at the end
  Rng rng(seed);
  for (std::size_t c = 0; c < blobs; ++c) {
    const auto base = static_cast<Vertex>(c * blob_n);
    // Spanning path keeps the blob connected, then random extra edges.
    for (std::size_t v = 1; v < blob_n; ++v) {
      g.add_edge(base + static_cast<Vertex>(v - 1),
                 base + static_cast<Vertex>(v));
    }
    for (std::size_t e = 0; e + blob_n - 1 < blob_m; ++e) {
      const auto u = static_cast<Vertex>(rng.uniform(blob_n));
      const auto v = static_cast<Vertex>(rng.uniform(blob_n));
      if (u != v) g.add_edge(base + u, base + v);
    }
  }
  return g;
}

TEST(Strength, RegionPackingMatchesGlobalPlacement) {
  // The invariant the level-0 region split relies on: forest packing never
  // crosses a component boundary, so packing each component's edges (in
  // ascending edge order) with its own packer reproduces the placement
  // index of one global serial packing.
  const Graph g = disconnected_blobs(5, 12, 40, 77);
  const std::size_t n = g.num_vertices();
  detail::ForestPacker global(n);
  std::vector<std::size_t> expected(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    expected[e] = global.insert(g.edge(e).u, g.edge(e).v);
  }

  UnionFind comps(n);
  for (const Edge& e : g.edges()) comps.unite(e.u, e.v);
  std::map<std::uint32_t, detail::ForestPacker> per_component;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const std::uint32_t root = comps.find(g.edge(e).u);
    auto [it, inserted] = per_component.try_emplace(root);
    if (inserted) it->second.reset(n);
    EXPECT_EQ(it->second.insert(g.edge(e).u, g.edge(e).v), expected[e])
        << "edge " << e;
  }
  EXPECT_GT(per_component.size(), 1u);
}

TEST(Strength, IntoIsBitwiseThreadCountInvariant) {
  // The gate for the region-split parallel path: subsample depths and the
  // resulting strengths must be bitwise identical for any thread count,
  // and scratch reuse must not perturb them.
  const Graph g = disconnected_blobs(6, 20, 90, 91);
  const std::uint64_t seed = 1234;
  StrengthScratch scratch;
  std::vector<double> reference;
  estimate_strengths_into(g.num_vertices(), g.edges(), seed, reference,
                          scratch);
  ASSERT_EQ(reference.size(), g.num_edges());
  for (double s : reference) EXPECT_GE(s, 1.0);
  for (const std::size_t threads : {2, 8}) {
    ThreadPool pool(threads);
    StrengthScratch fresh;
    std::vector<double> out;
    for (int rep = 0; rep < 2; ++rep) {  // second rep reuses the scratch
      estimate_strengths_into(g.num_vertices(), g.edges(), seed, out, fresh,
                              &pool);
      EXPECT_EQ(out, reference) << threads << " threads, rep " << rep;
    }
  }
  // A connected graph (one region) must also be invariant.
  Graph dense = gen::gnm(40, 300, 15);
  StrengthScratch dense_scratch;
  std::vector<double> dense_ref, dense_out;
  estimate_strengths_into(dense.num_vertices(), dense.edges(), seed,
                          dense_ref, dense_scratch);
  ThreadPool pool(4);
  estimate_strengths_into(dense.num_vertices(), dense.edges(), seed,
                          dense_out, dense_scratch, &pool);
  EXPECT_EQ(dense_out, dense_ref);
}

class SparsifierQualityParam
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsifierQualityParam, CutsPreserved) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(60, 500, seed * 7 + 1);
  const auto w = unit_weights(g);
  SparsifierOptions opt;
  opt.xi = 0.2;
  const auto kept = cut_sparsify(g.num_vertices(), g.edges(), w, opt,
                                 seed * 13 + 5);
  const double err =
      max_cut_error(g.num_vertices(), g.edges(), w, kept, 200, seed);
  // Allow modest slack over the target xi (finite-sample constants).
  EXPECT_LT(err, 2.5 * opt.xi) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SparsifierQualityParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Sparsifier, WeightedClassesPreserved) {
  Graph g = gen::gnm(50, 400, 3);
  gen::weight_zipf(g, 1.0, 4);
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
  SparsifierOptions opt;
  opt.xi = 0.2;
  const auto kept = cut_sparsify(g, opt, 7);
  const double err = max_cut_error(g.num_vertices(), g.edges(), w, kept,
                                   200, 11);
  EXPECT_LT(err, 2.5 * opt.xi);
}

TEST(Sparsifier, SparseOnDenseGraph) {
  const Graph g = gen::gnm(120, 6000, 9);
  SparsifierOptions opt;
  opt.xi = 0.5;
  opt.sampling_constant = 1.5;
  const auto kept = cut_sparsify(g, opt, 10);
  EXPECT_LT(kept.size(), g.num_edges());
}

TEST(Sparsifier, ZeroWeightEdgesDropped) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> w{1.0, 0.0, 1.0};
  const auto kept =
      cut_sparsify(4, g.edges(), w, SparsifierOptions{}, 1);
  for (const auto& s : kept) EXPECT_NE(s.index, 1u);
}

TEST(SparsifierToGraph, PreservesEndpoints) {
  const Graph g = gen::gnm(30, 100, 12);
  const auto kept = cut_sparsify(g, SparsifierOptions{}, 13);
  const Graph h = sparsifier_to_graph(g.num_vertices(), g.edges(), kept);
  EXPECT_EQ(h.num_edges(), kept.size());
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
}

class DeferredParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeferredParam, DistortedPromiseStillSparsifies) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(60, 500, seed + 31);
  Rng rng(seed);

  // Exact weights u_e; promises sigma_e distorted by up to gamma each way.
  DeferredOptions opt;
  opt.xi = 0.2;
  opt.gamma = 2.0;
  std::vector<double> exact(g.num_edges()), promise(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    exact[e] = 1.0 + 4.0 * rng.uniform_real();
    const double distort =
        std::pow(opt.gamma, 2.0 * rng.uniform_real() - 1.0);
    promise[e] = exact[e] * distort;
  }

  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise, opt,
                              seed * 3 + 2);
  const auto kept = ds.refine_from_full(exact);
  const double err = max_cut_error(g.num_vertices(), g.edges(), exact, kept,
                                   200, seed);
  EXPECT_LT(err, 2.5 * opt.xi) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DeferredParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Deferred, StoresMoreWithLargerGamma) {
  // Compare expected stored sizes (deterministic probability sums) so the
  // assertion is immune to sampling noise; the gamma^2 oversampling must
  // strictly increase inclusion probabilities wherever they are below 1.
  const Graph g = gen::gnm(150, 8000, 41);
  std::vector<double> promise(g.num_edges(), 1.0);
  DeferredOptions small, large;
  small.xi = large.xi = 0.5;
  small.sampling_constant = large.sampling_constant = 1.0;
  small.gamma = 1.0;
  large.gamma = 3.0;
  const auto pa = deferred_probabilities(g.num_vertices(), g.edges(),
                                         promise, small, 1);
  const auto pb = deferred_probabilities(g.num_vertices(), g.edges(),
                                         promise, large, 1);
  double sum_a = 0, sum_b = 0;
  for (double p : pa) sum_a += p;
  for (double p : pb) sum_b += p;
  EXPECT_LT(sum_a, static_cast<double>(g.num_edges()));  // not saturated
  EXPECT_GT(sum_b, sum_a + 1.0);
  for (std::size_t e = 0; e < pa.size(); ++e) {
    EXPECT_GE(pb[e], pa[e] - 1e-12);
  }
}

TEST(Deferred, MeterChargedOnceAndStored) {
  const Graph g = gen::gnm(40, 300, 42);
  std::vector<double> promise(g.num_edges(), 1.0);
  ResourceMeter meter;
  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise,
                              DeferredOptions{}, 2, &meter);
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_EQ(meter.peak_edges(), ds.size());
}

TEST(Deferred, RefineRejectsSizeMismatch) {
  const Graph g = gen::gnm(10, 20, 43);
  std::vector<double> promise(g.num_edges(), 1.0);
  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise,
                              DeferredOptions{}, 3);
  EXPECT_THROW(ds.refine({}), std::invalid_argument);
  EXPECT_THROW(
      (DeferredSparsifier{g.num_vertices(), g.edges(),
                          std::vector<double>(3, 1.0), DeferredOptions{}, 4}),
      std::invalid_argument);
}

TEST(Deferred, ProbabilitiesThreadCountInvariantAndScratchReusable) {
  // The chunk-parallel path must be bitwise identical for any pool size,
  // equal to the allocating wrapper, and stable when one scratch serves
  // many rounds.
  Graph g = gen::gnm(80, 900, 45);
  gen::weight_zipf(g, 0.8, 46);
  std::vector<double> promise(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) promise[e] = g.edge(e).w;
  DeferredOptions opt;
  opt.xi = 0.4;
  opt.sampling_constant = 0.3;

  const auto reference = deferred_probabilities(g.num_vertices(), g.edges(),
                                                promise, opt, 11);
  DeferredScratch scratch;
  std::vector<double> prob;
  for (std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {  // scratch reuse
      deferred_probabilities_into(g.num_vertices(), g.edges(), promise, opt,
                                  11, prob, scratch, &pool);
      EXPECT_EQ(prob, reference) << "threads " << threads;
    }
  }
}

TEST(Deferred, ProbabilitiesSharedAcrossDraws) {
  const Graph g = gen::gnm(50, 400, 44);
  std::vector<double> promise(g.num_edges(), 1.0);
  const auto prob = deferred_probabilities(g.num_vertices(), g.edges(),
                                           promise, DeferredOptions{}, 5);
  ASSERT_EQ(prob.size(), g.num_edges());
  for (double p : prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(CutEval, WeightedCutBasics) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 4.0);
  const std::vector<double> w{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(weighted_cut(g.edges(), w, {1, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(weighted_cut(g.edges(), w, {1, 1, 0, 0}), 2.0);
}

TEST(StoerWagner, KnownMinCut) {
  // Two triangles joined by a single light edge.
  Graph g(6);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(3, 4, 3.0);
  g.add_edge(4, 5, 3.0);
  g.add_edge(3, 5, 3.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> w;
  for (const Edge& e : g.edges()) w.push_back(e.w);
  std::vector<char> side;
  const double cut = stoer_wagner_min_cut(6, g.edges(), w, &side);
  EXPECT_DOUBLE_EQ(cut, 1.0);
  EXPECT_NE(side[0], side[5]);
}

}  // namespace
}  // namespace dp
