// Tests for the matching substrate: greedy, maximal, exact solvers
// (bitmask DP, Hungarian, blossoms) and the approximate offline solver.
// The weighted blossom is validated exhaustively against the DP.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/approx.hpp"
#include "matching/blossom_unweighted.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/exact_small.hpp"
#include "matching/greedy.hpp"
#include "matching/hungarian.hpp"
#include "test_helpers.hpp"

namespace dp {
namespace {

TEST(Greedy, ValidAndHalfApprox) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g = test::small_random_graph(12, 0.4, seed);
    const Matching m = greedy_matching(g);
    ASSERT_TRUE(m.is_valid(g));
    const double opt = test::opt_weight(g);
    EXPECT_GE(m.weight(g), 0.5 * opt - 1e-9) << "seed " << seed;
  }
}

TEST(Greedy, TrapPathIsTight) {
  // Greedy picks the (1+delta) middle edges and loses nearly half.
  const Graph g = gen::greedy_trap_path(20, 0.01);
  const Matching greedy = greedy_matching(g);
  const Matching opt = max_weight_matching(g);
  ASSERT_TRUE(greedy.is_valid(g));
  EXPECT_LT(greedy.weight(g), 0.6 * opt.weight(g));
}

TEST(Maximal, EveryEdgeBlocked) {
  const Graph g = test::small_random_graph(15, 0.3, 7);
  const Matching m = maximal_matching(g);
  ASSERT_TRUE(m.is_valid(g));
  const auto mate = m.mates(g);
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(mate[e.u] != Matching::kUnmatched ||
                mate[e.v] != Matching::kUnmatched);
  }
}

TEST(ExactSmall, PathAndTriangle) {
  Graph path(4);
  path.add_edge(0, 1, 1.0);
  path.add_edge(1, 2, 5.0);
  path.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(exact_matching_weight_small(path), 5.0);

  Graph tri(3);
  tri.add_edge(0, 1, 2.0);
  tri.add_edge(1, 2, 3.0);
  tri.add_edge(0, 2, 4.0);
  EXPECT_DOUBLE_EQ(exact_matching_weight_small(tri), 4.0);
}

TEST(ExactSmall, MatchesReconstruction) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = test::small_random_graph(10, 0.5, seed);
    const Matching m = exact_matching_small(g);
    ASSERT_TRUE(m.is_valid(g));
    EXPECT_NEAR(m.weight(g), exact_matching_weight_small(g), 1e-9);
  }
}

TEST(ExactSmall, RejectsLargeGraphs) {
  EXPECT_THROW(exact_matching_small(Graph(30)), std::invalid_argument);
}

class BlossomWeightedParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlossomWeightedParam, MatchesBitmaskDP) {
  const std::uint64_t seed = GetParam();
  // Vary size/density with the seed for coverage diversity.
  const std::size_t n = 6 + seed % 9;           // 6..14
  const double density = 0.25 + 0.1 * (seed % 6);
  const Graph g = test::small_random_int_graph(n, density, 40, seed * 77 + 1);
  const Matching blossom = max_weight_matching(g);
  ASSERT_TRUE(blossom.is_valid(g));
  EXPECT_NEAR(blossom.weight(g), test::opt_weight(g), 1e-9)
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BlossomWeightedParam,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(BlossomWeighted, FractionalWeightsViaScaling) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Graph g = test::small_random_graph(10, 0.5, seed);
    const Matching m = max_weight_matching(g);
    ASSERT_TRUE(m.is_valid(g));
    EXPECT_NEAR(m.weight(g), test::opt_weight(g), 1e-6);
  }
}

TEST(BlossomWeighted, EmptyAndSingleEdge) {
  EXPECT_TRUE(max_weight_matching(Graph(0)).empty());
  EXPECT_TRUE(max_weight_matching(Graph(5)).empty());
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  EXPECT_EQ(max_weight_matching(g).size(), 1u);
}

class BlossomUnweightedParam
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlossomUnweightedParam, MaxCardinalityMatchesDP) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 5 + seed % 10;
  Graph g = test::small_random_graph(n, 0.35, seed * 13 + 5);
  gen::weight_unit(g);
  const Matching m = max_cardinality_matching(g);
  ASSERT_TRUE(m.is_valid(g));
  EXPECT_NEAR(static_cast<double>(m.size()), test::opt_weight(g), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BlossomUnweightedParam,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(BlossomUnweighted, OddCycleNeedsContraction) {
  // C5: maximum matching 2; greedy BFS without blossoms would fail.
  Graph g(5);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>((i + 1) % 5),
               1.0);
  }
  EXPECT_EQ(max_cardinality_matching(g).size(), 2u);
}

class HungarianParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HungarianParam, MatchesDPOnBipartite) {
  const std::uint64_t seed = GetParam();
  const std::size_t nl = 3 + seed % 5;
  const std::size_t nr = 3 + (seed / 2) % 5;
  Graph g = gen::bipartite(nl, nr, std::min(nl * nr, nl * nr / 2 + 2),
                           seed * 31 + 7);
  gen::weight_uniform(g, 1.0, 9.0, seed);
  const Matching m = hungarian_matching(g);
  ASSERT_TRUE(m.is_valid(g));
  EXPECT_NEAR(m.weight(g), test::opt_weight(g), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomBipartite, HungarianParam,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Hungarian, RejectsOddCycle) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  EXPECT_THROW(hungarian_matching(g), std::invalid_argument);
}

TEST(Bipartition, DetectsBipartite) {
  const Graph g = gen::bipartite(4, 5, 12, 3);
  const auto side = bipartition(g);
  ASSERT_TRUE(side.has_value());
  for (const Edge& e : g.edges()) {
    EXPECT_NE((*side)[e.u], (*side)[e.v]);
  }
}

class LocalSearchParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchParam, AtLeastTwoThirdsInPractice) {
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(14, 0.4, seed * 3 + 11);
  const Matching m = local_search_matching(g, 64, seed);
  ASSERT_TRUE(m.is_valid(g));
  const double opt = test::opt_weight(g);
  // One-for-two + two-for-one local optimality empirically lands >= 0.8;
  // assert a conservative 2/3.
  EXPECT_GE(m.weight(g), (2.0 / 3.0) * opt - 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LocalSearchParam,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(ApproxDispatch, UsesExactForSmall) {
  const Graph g = test::small_random_graph(12, 0.5, 99);
  const Matching m = approx_weighted_matching(g);
  EXPECT_NEAR(m.weight(g), test::opt_weight(g), 1e-6);
}

TEST(BMatchingGreedy, ValidAndHalfOfExact) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Graph g = test::small_random_graph(8, 0.45, seed + 500);
    const Capacities b = gen::random_capacities(8, 1, 3, seed);
    const BMatching bm = greedy_b_matching(g, b);
    ASSERT_TRUE(bm.is_valid(g, b));
    if (g.num_edges() <= 18) {
      const double opt = exact_b_matching_weight_small(g, b);
      EXPECT_GE(bm.weight(g), 0.5 * opt - 1e-9) << "seed " << seed;
    }
  }
}

TEST(BMatchingApprox, ImprovesOnGreedyOrEqual) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Graph g = test::small_random_graph(10, 0.5, seed + 900);
    const Capacities b = gen::random_capacities(10, 1, 4, seed);
    const BMatching greedy = greedy_b_matching(g, b);
    const BMatching better = approx_weighted_b_matching(g, b);
    ASSERT_TRUE(better.is_valid(g, b));
    EXPECT_GE(better.weight(g), greedy.weight(g) - 1e-9);
  }
}

TEST(BMatchingSaturation, MultiplicityIsResidualMin) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 1.0);
  const Capacities b(3, 3);
  const BMatching bm = greedy_b_matching(g, b);
  EXPECT_EQ(bm.multiplicity(0), 3);  // saturates both 0 and 1
  EXPECT_EQ(bm.multiplicity(1), 0);  // vertex 1 exhausted
}

TEST(MatchingTypes, MatesAndValidity) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 1.0);
  Matching m({0, 1});
  ASSERT_TRUE(m.is_valid(g));
  const auto mates = m.mates(g);
  EXPECT_EQ(mates[0], 1u);
  EXPECT_EQ(mates[3], 2u);
  Matching bad({0, 2});  // edges 0 and 2 share vertex 1
  EXPECT_FALSE(bad.is_valid(g));
}

}  // namespace
}  // namespace dp
