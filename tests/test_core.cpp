// Tests for the core substrate pieces: weight levels (Definitions 2/3),
// dual state algebra, odd-set separation (Lemma 16/24/25), the MicroOracle
// (Algorithm 5) and the initial solution (Lemma 12).

#include <gtest/gtest.h>

#include <cmath>

#include "core/dual_state.hpp"
#include "core/initial.hpp"
#include "core/odd_sets.hpp"
#include "core/oracle.hpp"
#include "core/weight_levels.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace dp::core {
namespace {

TEST(WeightLevels, LevelsAndScale) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 4.0);
  g.add_edge(2, 3, 16.0);
  const Capacities b = Capacities::unit(4);
  const LevelGraph lg(g, b, 0.25);
  EXPECT_EQ(lg.graph().num_edges(), 3u);
  // Normalized weights w/scale with scale = eps W*/B = 0.25*16/4 = 1.
  EXPECT_DOUBLE_EQ(lg.scale(), 1.0);
  EXPECT_EQ(lg.level(0), 0);                       // w=1 -> level 0
  EXPECT_GT(lg.level(2), lg.level(1));             // heavier -> higher level
  EXPECT_EQ(lg.retained().size(), 3u);
  for (EdgeId e = 0; e < 3; ++e) {
    // Discretization rounds down: wHat_k * scale <= w.
    EXPECT_LE(lg.normalized_weight(e) * lg.scale(), g.edge(e).w + 1e-9);
    // ... and loses at most a (1+eps) factor.
    EXPECT_GE(lg.normalized_weight(e) * lg.scale() * 1.25 + 1e-9,
              g.edge(e).w);
  }
}

TEST(WeightLevels, DropsTinyEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1000.0);
  g.add_edge(1, 2, 1e-6);  // far below eps*W*/B
  const LevelGraph lg(g, Capacities::unit(3), 0.2);
  EXPECT_EQ(lg.level(1), -1);
  EXPECT_EQ(lg.retained().size(), 1u);
}

TEST(WeightLevels, RejectsBadEps) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(LevelGraph(g, Capacities::unit(2), 0.0),
               std::invalid_argument);
  EXPECT_THROW(LevelGraph(g, Capacities::unit(2), 1.5),
               std::invalid_argument);
}

TEST(DualState, CoverRowAndBlend) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  const Capacities b = Capacities::unit(4);
  const LevelGraph lg(g, b, 0.25);
  const int k = lg.level(0);
  DualState state(4, lg.num_levels());

  DualPoint p1;
  p1.xik[static_cast<std::uint64_t>(0) * lg.num_levels() + k] = 1.0;
  state.assign(p1);
  EXPECT_NEAR(state.x(0, k), 1.0, 1e-12);
  EXPECT_NEAR(state.cover_row(0, 1, k), 1.0, 1e-12);

  DualPoint p2;
  p2.xik[static_cast<std::uint64_t>(1) * lg.num_levels() + k] = 2.0;
  state.blend(p2, 0.5);  // state = 0.5*p1 + 0.5*p2
  EXPECT_NEAR(state.x(0, k), 0.5, 1e-12);
  EXPECT_NEAR(state.x(1, k), 1.0, 1e-12);
  EXPECT_NEAR(state.cover_row(0, 1, k), 1.5, 1e-12);
  EXPECT_NEAR(state.objective(b), 1.5, 1e-12);
}

TEST(DualState, OddSetContributions) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  const Capacities b = Capacities::unit(3);
  const LevelGraph lg(g, b, 0.25);
  const int k = lg.level(0);
  DualState state(3, lg.num_levels());

  DualPoint p;
  OddSetVar var;
  var.level = k;
  var.members = {0, 1, 2};
  var.value = 2.0;
  p.odd_sets.push_back(var);
  state.assign(p);
  // Every edge inside the set is covered by z; objective = floor(3/2)*z.
  EXPECT_NEAR(state.cover_row(0, 1, k), 2.0, 1e-12);
  EXPECT_NEAR(state.cover_row(0, 2, k), 2.0, 1e-12);
  EXPECT_NEAR(state.objective(b), 2.0, 1e-12);
  EXPECT_NEAR(state.po_row(0, k), 2.0, 1e-12);
  // z at level k does not cover rows at lower levels.
  if (k > 0) {
    EXPECT_NEAR(state.cover_row(0, 1, k - 1), 0.0, 1e-12);
  }
  // Blending the same set twice merges the entries.
  state.blend(p, 0.25);
  EXPECT_EQ(state.odd_set_support(), 1u);
}

TEST(DualState, LambdaMinRatio) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const Capacities b = Capacities::unit(4);
  const LevelGraph lg(g, b, 0.25);
  const int k = lg.level(0);
  DualState state(4, lg.num_levels());
  DualPoint p;
  const double w = lg.level_weight(k);
  p.xik[static_cast<std::uint64_t>(0) * lg.num_levels() + k] = w;      // edge 0 covered 1.0
  p.xik[static_cast<std::uint64_t>(2) * lg.num_levels() + k] = w / 2;  // edge 1 covered 0.5
  state.assign(p);
  EXPECT_NEAR(state.lambda(lg), 0.5, 1e-9);
}

TEST(CombinePoints, LinearAlgebra) {
  DualPoint a, b;
  a.xik[5] = 2.0;
  b.xik[5] = 4.0;
  b.xik[7] = 1.0;
  OddSetVar var;
  var.level = 0;
  var.members = {1, 2, 3};
  var.value = 3.0;
  a.odd_sets.push_back(var);
  const DualPoint c = combine_points(a, 0.5, b, 0.25);
  EXPECT_NEAR(c.xik.at(5), 2.0, 1e-12);
  EXPECT_NEAR(c.xik.at(7), 0.25, 1e-12);
  ASSERT_EQ(c.odd_sets.size(), 1u);
  EXPECT_NEAR(c.odd_sets[0].value, 1.5, 1e-12);
}

TEST(OddSetSeparation, FindsPlantedTriangle) {
  // Triangle with heavy internal q plus isolated light edges elsewhere.
  const std::size_t n = 10;
  std::vector<OddSetQueryEdge> q{{0, 1, 2.0}, {1, 2, 2.0}, {0, 2, 2.0},
                                 {5, 6, 0.1}};
  std::vector<double> q_hat(n, 0.0);
  q_hat[0] = q_hat[1] = q_hat[2] = 4.1;  // just above the incident sum 4.0
  q_hat[5] = q_hat[6] = 1.0;
  OddSetOptions opt;
  opt.eps = 0.25;
  const auto sets =
      find_dense_odd_sets(n, q, q_hat, Capacities::unit(n), opt);
  bool found_triangle = false;
  for (const auto& set : sets) {
    if (set == std::vector<Vertex>{0, 1, 2}) found_triangle = true;
  }
  EXPECT_TRUE(found_triangle);
}

TEST(OddSetSeparation, RespectsParityAndSize) {
  const std::size_t n = 12;
  std::vector<OddSetQueryEdge> q;
  // A dense K5 on {0..4}.
  for (Vertex i = 0; i < 5; ++i) {
    for (Vertex j = i + 1; j < 5; ++j) q.push_back({i, j, 3.0});
  }
  std::vector<double> q_hat(n, 0.0);
  for (Vertex i = 0; i < 5; ++i) q_hat[i] = 12.5;
  OddSetOptions opt;
  opt.eps = 0.25;  // max ||U||_b = 16
  const auto sets =
      find_dense_odd_sets(n, q, q_hat, Capacities::unit(n), opt);
  for (const auto& set : sets) {
    EXPECT_GE(set.size(), 3u);
    EXPECT_EQ(set.size() % 2, 1u);           // unit capacities: odd size
    EXPECT_LE(set.size(), 16u);
  }
}

TEST(OddSetSeparation, DisjointFamily) {
  const std::size_t n = 9;
  std::vector<OddSetQueryEdge> q;
  for (int t = 0; t < 3; ++t) {
    const auto base = static_cast<Vertex>(3 * t);
    q.push_back({base, base + 1u, 2.0});
    q.push_back({base + 1u, base + 2u, 2.0});
    q.push_back({base, base + 2u, 2.0});
  }
  std::vector<double> q_hat(n, 4.1);
  OddSetOptions opt;
  opt.eps = 0.25;
  const auto sets =
      find_dense_odd_sets(n, q, q_hat, Capacities::unit(n), opt);
  EXPECT_EQ(sets.size(), 3u);
  std::vector<char> seen(n, 0);
  for (const auto& set : sets) {
    for (Vertex v : set) {
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
}

TEST(OddSetSeparation, IncrementalGusfieldAcrossContractionRounds) {
  // A found-and-contracted round must make the NEXT round's Gusfield
  // tree come from the incremental stamped replay, not a scratch
  // rebuild — with strictly fewer max-flows. The heavy triangle sits on
  // the HIGHEST active ids so the stamped root (local 0) survives the
  // contraction (a contracted root is the documented full-rebuild
  // fallback), and the light edges are disjoint pairs: never an odd
  // set, but they keep the residual network alive into round 2.
  const std::size_t n = 12;
  std::vector<OddSetQueryEdge> q{{0, 1, 0.1}, {2, 3, 0.1}, {4, 5, 0.1},
                                 {6, 7, 2.0}, {7, 8, 2.0}, {6, 8, 2.0}};
  std::vector<double> q_hat(n, 0.0);
  for (Vertex v = 0; v < 6; ++v) q_hat[v] = 1.0;
  q_hat[6] = q_hat[7] = q_hat[8] = 4.1;  // just above the incident sum
  OddSetOptions opt;
  opt.eps = 0.25;
  OddSetSeparator sep;
  const auto sets = sep.find(n, q, q_hat, Capacities::unit(n), opt);
  bool found_triangle = false;
  for (const auto& set : sets) {
    if (set == std::vector<Vertex>{6, 7, 8}) found_triangle = true;
  }
  EXPECT_TRUE(found_triangle);
  const SeparationStats s = sep.stats();
  EXPECT_EQ(s.gh_full_builds, 1u);   // round 1 only
  EXPECT_GE(s.gh_incremental, 1u);   // round 2 replayed the stamp
  EXPECT_GT(s.flows_saved, 0u);      // with reused (free) steps
}

TEST(OddSetSeparation, SeparatorReuseMatchesFreeFunction) {
  // One OddSetSeparator reused across many instances must behave exactly
  // like a fresh one every time: the touched-entry resets restore the
  // rest state, on both the exact (arena) and heuristic paths.
  Rng rng(7);
  OddSetSeparator sep;
  for (int inst = 0; inst < 24; ++inst) {
    const std::size_t n = 12 + rng.uniform(40);
    const std::size_t m = 10 + rng.uniform(60);
    std::vector<OddSetQueryEdge> q;
    for (std::size_t e = 0; e < m; ++e) {
      const auto u = static_cast<Vertex>(rng.uniform(n));
      const auto v = static_cast<Vertex>(rng.uniform(n));
      if (u == v) continue;
      q.push_back(OddSetQueryEdge{u, v, rng.uniform_real(0.1, 3.0)});
    }
    if (q.empty()) continue;
    std::vector<double> q_hat(n, 0.1);
    for (const auto& qe : q) {
      q_hat[qe.u] += qe.q;
      q_hat[qe.v] += qe.q;
    }
    for (auto& value : q_hat) value *= rng.uniform_real(1.0, 1.3);
    OddSetOptions opt;
    opt.eps = 0.2 + 0.05 * (inst % 3);
    if (inst % 2 == 1) opt.gomory_hu_limit = 1;  // heuristic path
    const auto reused =
        sep.find(n, q, q_hat, Capacities::unit(n), opt);
    const auto fresh =
        find_dense_odd_sets(n, q, q_hat, Capacities::unit(n), opt);
    EXPECT_EQ(reused, fresh) << "instance " << inst;
  }
}

TEST(OddSetSeparation, HeuristicModeSmoke) {
  // Force the heuristic path with a tiny gomory_hu_limit.
  const std::size_t n = 9;
  std::vector<OddSetQueryEdge> q{{0, 1, 2.0}, {1, 2, 2.0}, {0, 2, 2.0}};
  std::vector<double> q_hat(n, 4.1);
  OddSetOptions opt;
  opt.eps = 0.25;
  opt.gomory_hu_limit = 1;
  const auto sets =
      find_dense_odd_sets(n, q, q_hat, Capacities::unit(n), opt);
  for (const auto& set : sets) {
    EXPECT_GE(set.size(), 3u);
    EXPECT_EQ(set.size() % 2, 1u);
  }
}

class InitialParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InitialParam, CoverageAndBudget) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(40, 200, seed * 3 + 1);
  gen::weight_zipf(g, 0.8, seed);
  const Capacities b = Capacities::unit(40);
  const double eps = 0.25;
  const LevelGraph lg(g, b, eps);
  ResourceMeter meter;
  const InitialSolution init = build_initial(lg, b, 2.0, seed, &meter);

  // Coverage: A x0 >= r * c on every retained edge.
  DualState state(40, lg.num_levels());
  state.assign(init.x0);
  EXPECT_GE(state.lambda(lg) + 1e-12, init.coverage) << "seed " << seed;
  EXPECT_NEAR(init.coverage, eps / 256.0, 1e-12);

  // beta0 consistent with the state objective and positive.
  EXPECT_NEAR(state.objective(b), init.beta0, 1e-9);
  EXPECT_GT(init.beta0, 0.0);
  EXPECT_GT(meter.rounds(), 0u);
  EXPECT_FALSE(init.support.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, InitialParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(MicroOracle, ZeroGammaReturnsZeroPoint) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const Capacities b = Capacities::unit(3);
  const LevelGraph lg(g, b, 0.25);
  const MicroOracle oracle(lg, b, OracleConfig{});
  // No stored multipliers at all -> gamma = 0 -> zero dual point.
  const MicroResult result = oracle.run({}, {}, 1.0, 1.0);
  EXPECT_EQ(result.kind, MicroResult::Kind::kDual);
  EXPECT_TRUE(result.x.xik.empty());
  EXPECT_TRUE(result.x.odd_sets.empty());
}

TEST(MicroOracle, LargeBetaTriggersVertexCase) {
  // With beta large the violation threshold gamma*b_i*w/beta is easy to
  // clear, so case A (vertex duals) must fire and the returned point must
  // satisfy the LagInner inequality.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const Capacities b = Capacities::unit(4);
  const LevelGraph lg(g, b, 0.25);
  const MicroOracle oracle(lg, b, OracleConfig{});
  std::vector<StoredMultiplier> us{{0, 1.0}, {1, 1.0}};
  const double beta = 100.0;
  const MicroResult result = oracle.run(us, {}, beta, 1.0);
  ASSERT_EQ(result.kind, MicroResult::Kind::kDual);
  EXPECT_FALSE(result.x.xik.empty());

  // LagInner with zeta = 0 reduces to (us)^T A x >= (1 - eps/16)(us)^T c.
  const int L = lg.num_levels();
  double lhs = 0, rhs = 0;
  for (const auto& sm : us) {
    const Edge& e = lg.graph().edge(sm.edge);
    const int k = lg.level(sm.edge);
    double row = 0;
    const auto xu = result.x.xik.find(
        static_cast<std::uint64_t>(e.u) * L + k);
    const auto xv = result.x.xik.find(
        static_cast<std::uint64_t>(e.v) * L + k);
    if (xu != result.x.xik.end()) row += xu->second;
    if (xv != result.x.xik.end()) row += xv->second;
    lhs += sm.us * row;
    rhs += sm.us * lg.level_weight(k);
  }
  EXPECT_GE(lhs, (1.0 - lg.eps() / 16.0) * rhs - 1e-9);
}

TEST(MicroOracle, TriangleProducesOddSetOrPrimal) {
  // Unit triangle with beta at the integral optimum: the vertex case cannot
  // absorb everything; the oracle must either separate the triangle odd set
  // or report primal progress.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  const Capacities b = Capacities::unit(3);
  const LevelGraph lg(g, b, 0.25);
  OracleConfig config;
  const MicroOracle oracle(lg, b, config);
  std::vector<StoredMultiplier> us{{0, 1.0}, {1, 1.0}, {2, 1.0}};
  // Normalized beta of the integral optimum (one edge).
  const double beta = lg.level_weight(lg.level(0));
  const MicroResult result = oracle.run(us, {}, beta, 1.0);
  if (result.kind == MicroResult::Kind::kDual) {
    EXPECT_FALSE(result.x.odd_sets.empty() && result.x.xik.empty());
  }
  SUCCEED();
}

TEST(MicroOracle, LagrangianMeetsPackingBound) {
  Graph g = gen::triangle_rich(3, 2, 5);
  const Capacities b = Capacities::unit(g.num_vertices());
  const LevelGraph lg(g, b, 0.25);
  const MicroOracle oracle(lg, b, OracleConfig{});
  std::vector<StoredMultiplier> us;
  for (EdgeId e = 0; e < g.num_edges(); ++e) us.push_back({e, 1.0});
  // Nontrivial zeta on a few rows.
  ZetaMap zeta;
  const int L = lg.num_levels();
  for (Vertex v = 0; v < 4; ++v) {
    zeta[static_cast<std::uint64_t>(v) * L + lg.level(0)] = 0.5;
  }
  std::size_t calls = 0;
  const MicroResult result =
      oracle.run_lagrangian(us, zeta, /*beta=*/2.0, &calls);
  EXPECT_GT(calls, 0u);
  if (result.kind == MicroResult::Kind::kDual) {
    const double po = oracle.weighted_po(result.x, zeta);
    const double qo = oracle.weighted_qo(zeta);
    EXPECT_LE(po, (13.0 / 12.0) * qo + 1e-6);
  }
}

}  // namespace
}  // namespace dp::core
