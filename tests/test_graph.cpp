// Tests for graph containers, generators, union-find, connectivity,
// laminar families and I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/laminar.hpp"
#include "graph/union_find.hpp"
#include "matching/hungarian.hpp"

namespace dp {
namespace {

TEST(Graph, BasicConstruction) {
  Graph g(5);
  EXPECT_TRUE(g.add_edge(0, 1, 2.0));
  EXPECT_TRUE(g.add_edge(1, 2, 3.0));
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop rejected
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(g.max_weight(), 3.0);
  EXPECT_THROW(g.add_edge(0, 9), std::out_of_range);
}

TEST(Graph, AdjacencyView) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  bool saw_edge1 = false;
  for (const auto& inc : g.neighbors(1)) {
    if (inc.neighbor == 2) saw_edge1 = true;
  }
  EXPECT_TRUE(saw_edge1);
}

TEST(Graph, EdgeSubgraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Graph sub = g.edge_subgraph({1, 0, 1});
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_EQ(sub.num_vertices(), 4u);
}

TEST(Capacities, Totals) {
  const Capacities b({1, 2, 3});
  EXPECT_EQ(b.total(), 6);
  EXPECT_EQ(b.weight_of({0, 2}), 4);
  EXPECT_EQ(Capacities::unit(5).total(), 5);
}

TEST(Generators, GnmExactCount) {
  const Graph g = gen::gnm(50, 200, 1);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_THROW(gen::gnm(5, 100, 1), std::invalid_argument);
}

TEST(Generators, GnpExpectedCount) {
  const Graph g = gen::gnp(200, 0.1, 2);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4 * std::sqrt(expected));
}

TEST(Generators, Deterministic) {
  const Graph a = gen::gnm(30, 60, 77);
  const Graph b = gen::gnm(30, 60, 77);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, BipartiteIsBipartite) {
  const Graph g = gen::bipartite(20, 30, 100, 3);
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, GridStructure) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // rows*(cols-1) + (rows-1)*cols
}

TEST(Generators, CompleteCount) {
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
}

TEST(Generators, TriangleRich) {
  const Graph g = gen::triangle_rich(5, 0, 1);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(num_components(g), 5u);
}

TEST(Generators, PowerLawReasonableDegree) {
  const Graph g = gen::power_law(500, 2.5, 6.0, 9);
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 14.0);
}

TEST(Generators, GeometricConnectsClosePoints) {
  const Graph g = gen::geometric(300, 0.12, 4);
  EXPECT_GT(g.num_edges(), 100u);
}

TEST(Generators, WeightersPreserveTopology) {
  Graph g = gen::gnm(30, 80, 5);
  gen::weight_uniform(g, 2.0, 4.0, 6);
  EXPECT_EQ(g.num_edges(), 80u);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 2.0);
    EXPECT_LE(e.w, 4.0);
  }
  gen::weight_geometric_classes(g, 0.5, 5, 7);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, std::pow(1.5, 4) + 1e-9);
  }
  gen::weight_unit(g);
  EXPECT_DOUBLE_EQ(g.total_weight(), 80.0);
}

TEST(Generators, GreedyTrapShape) {
  const Graph g = gen::greedy_trap_path(3, 0.1);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(num_components(g), 3u);
}

TEST(UnionFind, BasicOperations) {
  UnionFind uf(6);
  EXPECT_EQ(uf.num_components(), 6u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_EQ(uf.component_size(1), 3u);
}

TEST(Connectivity, ComponentsAndForest) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(num_components(g), 3u);
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_EQ(spanning_forest(g).size(), 3u);
}

TEST(Connectivity, CutWeight) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 5.0);
  const std::vector<char> s{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(cut_weight(g, s), 3.0);
}

TEST(Laminar, ClassifyRelations) {
  const std::vector<Vertex> a{1, 2, 3}, b{2, 3}, c{4, 5}, d{3, 4};
  EXPECT_EQ(classify_sets(a, b), SetRelation::kBSubsetA);
  EXPECT_EQ(classify_sets(b, a), SetRelation::kASubsetB);
  EXPECT_EQ(classify_sets(a, c), SetRelation::kDisjoint);
  EXPECT_EQ(classify_sets(a, d), SetRelation::kCrossing);
  EXPECT_EQ(classify_sets(a, a), SetRelation::kEqual);
}

TEST(Laminar, FamilyChecks) {
  LaminarFamily fam;
  fam.add({1, 2, 3, 4});
  fam.add({1, 2});
  fam.add({5, 6, 7});
  EXPECT_TRUE(fam.is_laminar());
  EXPECT_FALSE(fam.is_disjoint());
  fam.add({4, 5});  // crosses both {1,2,3,4} and {5,6,7}
  EXPECT_FALSE(fam.is_laminar());
}

TEST(Laminar, OrderByB) {
  LaminarFamily fam;
  fam.add({0, 1});
  fam.add({2, 3, 4});
  const Capacities b({5, 5, 1, 1, 1});
  const auto order = fam.order_by_decreasing_b(b);
  EXPECT_EQ(order[0], 0u);  // ||{0,1}||_b = 10 > 3
}

TEST(GraphIO, RoundTrip) {
  Graph g = gen::gnm(20, 40, 8);
  gen::weight_uniform(g, 1.0, 5.0, 9);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_NEAR(h.edge(e).w, g.edge(e).w, 1e-6);
  }
}

TEST(GraphIO, RejectsMalformed) {
  std::stringstream empty("");
  EXPECT_THROW(read_graph(empty), std::runtime_error);
  std::stringstream mismatch("3 5\n0 1 1.0\n");
  EXPECT_THROW(read_graph(mismatch), std::runtime_error);
}

}  // namespace
}  // namespace dp
