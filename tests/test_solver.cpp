// End-to-end tests for the dual-primal solver (Theorem 15): approximation
// quality against exact solvers, certificate soundness (the dual bound must
// upper-bound the true optimum), resource metering, b-matching, and
// determinism.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_unweighted.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/exact_small.hpp"
#include "matching/greedy.hpp"
#include "matching/hungarian.hpp"
#include "test_helpers.hpp"

namespace dp::core {
namespace {

SolverOptions fast_options(double eps = 0.15) {
  SolverOptions opt;
  opt.eps = eps;
  opt.p = 2.0;
  opt.seed = 7;
  opt.max_outer_rounds = 12;
  opt.sparsifiers_per_round = 4;
  return opt;
}

class SolverQualityParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverQualityParam, NearOptimalOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(60, 400, seed * 11 + 3);
  gen::weight_uniform(g, 1.0, 16.0, seed + 1);
  SolverOptions opt = fast_options();
  opt.seed = seed + 100;
  const SolverResult result = solve_matching(g, opt);
  ASSERT_TRUE(result.matching.is_valid(g));
  const double opt_value = max_weight_matching(g).weight(g);

  // Quality: within 1 - O(eps) of the true optimum.
  EXPECT_GE(result.value, (1.0 - 4.0 * opt.eps) * opt_value)
      << "seed " << seed;
  // Certificate soundness: the dual bound really upper-bounds OPT.
  EXPECT_GE(result.dual_bound, opt_value - 1e-6) << "seed " << seed;
  EXPECT_LE(result.certified_ratio, 1.0 + 1e-9);
  EXPECT_GT(result.certified_ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SolverQualityParam,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(Solver, BeatsGreedyOnTrapPath) {
  const Graph g = gen::greedy_trap_path(30, 0.02);
  const SolverResult result = solve_matching(g, fast_options(0.1));
  const double greedy_value = greedy_matching(g).weight(g);
  const double opt_value = max_weight_matching(g).weight(g);
  EXPECT_GT(result.value, greedy_value);
  EXPECT_GE(result.value, 0.9 * opt_value);
}

TEST(Solver, TriangleRichNeedsOddSets) {
  // Disjoint triangles: bipartite reasoning overestimates; the solver must
  // still return a valid near-optimal integral matching (one edge per
  // triangle).
  Graph g = gen::triangle_rich(10, 5, 3);
  const SolverResult result = solve_matching(g, fast_options(0.15));
  ASSERT_TRUE(result.matching.is_valid(g));
  const double opt_value =
      static_cast<double>(max_cardinality_matching(g).size());
  EXPECT_GE(result.value, (1.0 - 4.0 * 0.15) * opt_value);
  EXPECT_GE(result.dual_bound, opt_value - 1e-6);
}

TEST(Solver, BipartiteMatchesHungarian) {
  Graph g = gen::bipartite(25, 25, 200, 9);
  gen::weight_uniform(g, 1.0, 8.0, 10);
  const SolverResult result = solve_matching(g, fast_options(0.12));
  const double opt_value = hungarian_matching(g).weight(g);
  EXPECT_GE(result.value, (1.0 - 4.0 * 0.12) * opt_value);
  EXPECT_GE(result.dual_bound, opt_value - 1e-6);
}

TEST(Solver, UnweightedCardinality) {
  Graph g = gen::gnm(80, 300, 17);
  const SolverResult result = solve_matching(g, fast_options(0.15));
  const double opt_value =
      static_cast<double>(max_cardinality_matching(g).size());
  EXPECT_GE(result.value, (1.0 - 4.0 * 0.15) * opt_value);
}

TEST(Solver, EmptyAndTinyGraphs) {
  const SolverResult empty = solve_matching(Graph(0), fast_options());
  EXPECT_EQ(empty.value, 0.0);
  const SolverResult isolated = solve_matching(Graph(5), fast_options());
  EXPECT_EQ(isolated.value, 0.0);
  Graph single(2);
  single.add_edge(0, 1, 3.0);
  const SolverResult one = solve_matching(single, fast_options(0.05));
  EXPECT_DOUBLE_EQ(one.value, 3.0);
  // The certificate carries the (1+eps) discretization and eps*W*/2
  // dropped-mass slack even on a one-edge graph.
  EXPECT_GE(one.certified_ratio, 1.0 - 4.0 * 0.05);
}

TEST(Solver, SamplingDeterministicAcrossThreadCounts) {
  // The batched sampling engine's counter-based draws plus the fixed-chunk
  // sweeps make the WHOLE solve bitwise thread-count-invariant: stored
  // sparsifier sizes per round, the value, and the certified ratio must be
  // identical for 1/2/8 threads.
  Graph g = gen::gnm(120, 900, 51);
  gen::weight_uniform(g, 1.0, 12.0, 52);
  SolverOptions opt = fast_options(0.2);
  opt.max_outer_rounds = 3;
  std::vector<SolverResult> results;
  for (std::size_t threads : {1, 2, 8}) {
    opt.oracle.threads = threads;
    results.push_back(solve_matching(g, opt));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].value, results[i].value);
    EXPECT_EQ(results[0].certified_ratio, results[i].certified_ratio);
    ASSERT_EQ(results[0].history.size(), results[i].history.size());
    for (std::size_t r = 0; r < results[0].history.size(); ++r) {
      EXPECT_EQ(results[0].history[r].stored_edges,
                results[i].history[r].stored_edges)
          << "round " << r;
    }
    // End-to-end meter invariance: the pipeline's per-stage thread-local
    // meters aggregate to the same totals for every thread count.
    EXPECT_EQ(results[0].meter.rounds(), results[i].meter.rounds());
    EXPECT_EQ(results[0].meter.passes(), results[i].meter.passes());
    EXPECT_EQ(results[0].meter.peak_edges(), results[i].meter.peak_edges());
    EXPECT_EQ(results[0].meter.stored_edges(),
              results[i].meter.stored_edges());
    EXPECT_EQ(results[0].meter.inner_iterations(),
              results[i].meter.inner_iterations());
    EXPECT_EQ(results[0].meter.oracle_calls(),
              results[i].meter.oracle_calls());
  }
}

TEST(Solver, DeterministicForSeed) {
  Graph g = gen::gnm(50, 300, 21);
  gen::weight_uniform(g, 1.0, 4.0, 22);
  const SolverResult a = solve_matching(g, fast_options());
  const SolverResult b = solve_matching(g, fast_options());
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.outer_rounds, b.outer_rounds);
}

TEST(Solver, MetersResources) {
  Graph g = gen::gnm(60, 500, 23);
  const SolverResult result = solve_matching(g, fast_options());
  EXPECT_GT(result.meter.rounds(), 0u);
  EXPECT_GT(result.meter.peak_edges(), 0u);
  EXPECT_FALSE(result.history.empty());
  // Sampling rounds stay within the configured cap plus the initial phase.
  EXPECT_LE(result.outer_rounds, 12u);
}

TEST(Solver, SpaceSublinearInM) {
  // Peak stored edges is a function of n*polylog (sparsifier size), not of
  // m: tripling the edge count at fixed n must grow peak storage by far
  // less than 3x. (Absolute peak < m only kicks in at larger n where the
  // polylog factors are amortized — that scaling is bench E3's job.)
  SolverOptions opt = fast_options(0.2);
  opt.sparsifiers_per_round = 3;
  opt.max_outer_rounds = 2;
  Graph g1 = gen::gnm(250, 8000, 25);
  Graph g2 = gen::gnm(250, 24000, 26);
  const SolverResult r1 = solve_matching(g1, opt);
  const SolverResult r2 = solve_matching(g2, opt);
  EXPECT_GT(r1.value, 0.0);
  EXPECT_LT(static_cast<double>(r2.meter.peak_edges()),
            2.0 * static_cast<double>(r1.meter.peak_edges()));
  // And the denser instance must genuinely not store everything.
  EXPECT_LT(r2.meter.peak_edges() / opt.sparsifiers_per_round,
            g2.num_edges());
}

TEST(Solver, TargetRatioStopsEarly) {
  Graph g = gen::gnm(60, 400, 29);
  SolverOptions opt = fast_options(0.15);
  opt.target_ratio = 0.5;  // easy target: should stop quickly
  const SolverResult result = solve_matching(g, opt);
  EXPECT_GE(result.certified_ratio, 0.5);
}

class BMatchingSolverParam : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BMatchingSolverParam, ValidAndBeatsGreedyFraction) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(40, 250, seed * 5 + 2);
  gen::weight_uniform(g, 1.0, 9.0, seed + 3);
  const Capacities b = gen::random_capacities(40, 1, 4, seed);
  SolverOptions opt = fast_options(0.15);
  opt.seed = seed + 10;
  const SolverResult result = solve_b_matching(g, b, opt);
  ASSERT_TRUE(result.b_matching.is_valid(g, b));
  const double greedy_value = greedy_b_matching(g, b).weight(g);
  EXPECT_GE(result.value, greedy_value * 0.99) << "seed " << seed;
  EXPECT_GE(result.dual_bound, result.value - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BMatchingSolverParam,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST(BMatchingSolver, ExactOnTinyInstance) {
  const Graph g = test::small_random_graph(8, 0.5, 77);
  if (g.num_edges() == 0 || g.num_edges() > 18) GTEST_SKIP();
  const Capacities b = gen::random_capacities(8, 1, 3, 5);
  const SolverResult result = solve_b_matching(g, b, fast_options(0.1));
  const double opt_value = exact_b_matching_weight_small(g, b);
  EXPECT_GE(result.value, (1.0 - 4.0 * 0.1) * opt_value);
  EXPECT_GE(result.dual_bound, opt_value - 1e-6);
}

TEST(Solver, HistoryMonotoneBest) {
  Graph g = gen::gnm(70, 600, 31);
  gen::weight_uniform(g, 1.0, 5.0, 32);
  const SolverResult result = solve_matching(g, fast_options());
  double prev = 0;
  for (const RoundStats& rs : result.history) {
    EXPECT_GE(rs.best_value, prev - 1e-12);
    prev = rs.best_value;
  }
}

}  // namespace
}  // namespace dp::core
