// Tests for the util substrate: RNG, hashing, accounting, math helpers and
// the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/accounting.hpp"
#include "util/cancel.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> bucket(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++bucket[rng.uniform(10)];
  }
  for (int count : bucket) {
    EXPECT_NEAR(count, trials / 10, trials / 50);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, CoinFlipsGeometric) {
  Rng rng(5);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const int flips = rng.coin_flips_until_tail();
    if (flips < 4) ++counts[flips];
  }
  // P(flips = k) = 2^-(k+1).
  EXPECT_NEAR(counts[0], trials / 2, trials / 25);
  EXPECT_NEAR(counts[1], trials / 4, trials / 25);
  EXPECT_NEAR(counts[2], trials / 8, trials / 25);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  for (std::size_t k : {1u, 5u, 50u, 99u}) {
    const auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t x : sample) EXPECT_LT(x, 100u);
  }
  EXPECT_EQ(rng.sample_without_replacement(10, 20).size(), 10u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next(), child2.next());
}

TEST(KWiseHash, DeterministicAndBounded) {
  Rng rng(1);
  const KWiseHash h(4, rng);
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h(x), h(x));
    EXPECT_LT(h(x), MersenneField::kPrime);
    EXPECT_LT(h.bounded(x, 50), 50u);
    EXPECT_GE(h.real(x), 0.0);
    EXPECT_LT(h.real(x), 1.0);
  }
}

TEST(KWiseHash, DifferentInstancesDiffer) {
  Rng rng(2);
  const KWiseHash h1(4, rng);
  const KWiseHash h2(4, rng);
  int collisions = 0;
  for (std::uint64_t x = 0; x < 100; ++x) {
    if (h1(x) == h2(x)) ++collisions;
  }
  EXPECT_LT(collisions, 3);
}

TEST(MersenneField, MulMatchesBigInt) {
  // (2^40)(2^30) mod (2^61-1) = 2^70 mod p = 2^9 * (2^61 mod p) = 2^9.
  EXPECT_EQ(MersenneField::mul(1ULL << 40, 1ULL << 30), 1ULL << 9);
  EXPECT_EQ(MersenneField::add(MersenneField::kPrime - 1, 1), 0u);
}

TEST(TabulationHash, Deterministic) {
  Rng rng(3);
  const TabulationHash h(rng);
  EXPECT_EQ(h(12345), h(12345));
  EXPECT_NE(h(12345), h(12346));  // overwhelmingly likely
}

TEST(EdgeKey, Symmetric) {
  EXPECT_EQ(edge_key(3, 7), edge_key(7, 3));
  EXPECT_NE(edge_key(3, 7), edge_key(3, 8));
}

TEST(ResourceMeter, CountsAndPeak) {
  ResourceMeter m;
  m.add_round();
  m.add_round(2);
  m.add_pass();
  m.store_edges(100);
  m.release_edges(40);
  m.store_edges(10);
  EXPECT_EQ(m.rounds(), 3u);
  EXPECT_EQ(m.passes(), 1u);
  EXPECT_EQ(m.stored_edges(), 70u);
  EXPECT_EQ(m.peak_edges(), 100u);
  m.add_sketch_words(5);
  m.add_messages(7);
  m.add_inner_iterations(2);
  m.add_oracle_calls(3);
  EXPECT_EQ(m.sketch_words(), 5u);
  EXPECT_EQ(m.messages(), 7u);
  EXPECT_EQ(m.inner_iterations(), 2u);
  EXPECT_EQ(m.oracle_calls(), 3u);
  EXPECT_FALSE(m.summary().empty());
}

TEST(ResourceMeter, MergeTakesMaxPeak) {
  ResourceMeter a, b;
  a.store_edges(10);
  b.store_edges(100);
  b.release_edges(100);
  a.merge(b);
  EXPECT_EQ(a.peak_edges(), 100u);
  EXPECT_EQ(a.stored_edges(), 10u);
}

TEST(ResourceMeter, MergeAddsCountersAndCombinedStoredRaisesPeak) {
  ResourceMeter a, b;
  a.add_round(2);
  a.add_pass();
  a.store_edges(60);  // peak 60, still held
  b.add_round();
  b.add_inner_iterations(3);
  b.add_oracle_calls(4);
  b.add_sketch_words(5);
  b.add_messages(6);
  b.store_edges(50);  // peak 50, still held
  a.merge(b);
  EXPECT_EQ(a.rounds(), 3u);
  EXPECT_EQ(a.passes(), 1u);
  EXPECT_EQ(a.inner_iterations(), 3u);
  EXPECT_EQ(a.oracle_calls(), 4u);
  EXPECT_EQ(a.sketch_words(), 5u);
  EXPECT_EQ(a.messages(), 6u);
  // Both meters still hold their edges: the combined running total (110)
  // exceeds either individual peak and becomes the merged peak.
  EXPECT_EQ(a.stored_edges(), 110u);
  EXPECT_EQ(a.peak_edges(), 110u);
}

TEST(ResourceMeter, StageAggregationMatchesDirectMetering) {
  // The round pipeline's accounting model: concurrent stages write
  // thread-local meters, merged at the stage boundary in fixed order. The
  // result must equal metering the same events directly on one meter —
  // that equality is what makes the counters thread-count-invariant.
  ResourceMeter direct;
  direct.add_round();
  direct.add_pass();
  direct.store_edges(500);
  direct.add_inner_iterations(4);
  direct.add_oracle_calls(9);
  direct.release_edges(500);

  ResourceMeter total, draw, offline, inner;
  draw.add_round();
  draw.add_pass();
  draw.store_edges(500);
  offline.store_edges(200);  // transient offline working set
  offline.release_edges(200);
  inner.add_inner_iterations(4);
  inner.add_oracle_calls(9);
  total.merge(draw);
  total.merge(offline);
  total.merge(inner);
  total.release_edges(500);

  EXPECT_EQ(total.rounds(), direct.rounds());
  EXPECT_EQ(total.passes(), direct.passes());
  EXPECT_EQ(total.stored_edges(), direct.stored_edges());
  EXPECT_EQ(total.peak_edges(), direct.peak_edges());
  EXPECT_EQ(total.inner_iterations(), direct.inner_iterations());
  EXPECT_EQ(total.oracle_calls(), direct.oracle_calls());
}

TEST(ResourceMeter, ReleaseClampsAtZero) {
  ResourceMeter m;
  m.store_edges(5);
  m.release_edges(9);
  EXPECT_EQ(m.stored_edges(), 0u);
  EXPECT_EQ(m.peak_edges(), 5u);
}

TEST(WeightClasses, LevelRoundTrip) {
  const WeightClasses wc(0.5, 1.0);
  EXPECT_EQ(wc.level_of(1.0), 0);
  EXPECT_EQ(wc.level_of(1.5), 1);
  EXPECT_EQ(wc.level_of(2.25), 2);
  EXPECT_EQ(wc.level_of(2.24), 1);
  EXPECT_NEAR(wc.weight_of(3), 3.375, 1e-12);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(wc.level_of(wc.weight_of(k)), k) << k;
  }
}

TEST(MathHelpers, LogLogSlope) {
  // y = x^2 exactly.
  std::vector<double> x{10, 100, 1000}, y{100, 10000, 1000000};
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(MathHelpers, MeanStd) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_NEAR(mean(v), 2.5, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter++; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, EmptyRangeNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitJobReturnsValueThroughFuture) {
  ThreadPool pool(2);
  Future<int> f = pool.submit_job([] { return 41 + 1; });
  ASSERT_TRUE(f.valid());
  EXPECT_EQ(f.get(), 42);
  EXPECT_FALSE(f.valid());  // one-shot: get() releases the handle
  EXPECT_THROW(f.get(), std::logic_error);  // misuse fails detectably
  Future<int> empty;
  EXPECT_THROW(empty.wait(), std::logic_error);
}

TEST(ThreadPool, SubmitJobPropagatesExceptions) {
  ThreadPool pool(2);
  Future<int> f =
      pool.submit_job([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ImmediateFutureAndPoollessHelper) {
  Future<int> ready = Future<int>::immediate(7);
  EXPECT_EQ(ready.get(), 7);
  // The free helper runs inline when no pool exists — same join-point code
  // path as the overlapped execution.
  Future<int> inline_f = submit_job(nullptr, [] { return 9; });
  EXPECT_EQ(inline_f.get(), 9);
  ThreadPool pool(2);
  Future<int> pooled = submit_job(&pool, [] { return 11; });
  EXPECT_EQ(pooled.get(), 11);
}

TEST(ThreadPool, BatchSweepsDoNotJoinPendingJobs) {
  // The overlap contract of the round pipeline: parallel_for /
  // parallel_chunks must complete while an unrelated one-shot job is still
  // running (they join per-call latches, not the global idle state). Under
  // the old wait_idle-based join this test would hang.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  Future<int> job = pool.submit_job([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 7;
  });
  std::atomic<std::size_t> covered{0};
  pool.parallel_chunks(0, 1000, 64,
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
                         covered += hi - lo;
                       });
  EXPECT_EQ(covered.load(), 1000u);  // finished while the job still runs
  std::atomic<std::size_t> hits{0};
  pool.parallel_for(0, 100, [&](std::size_t) { hits++; });
  EXPECT_EQ(hits.load(), 100u);
  release = true;
  EXPECT_EQ(job.get(), 7);
}

// ---------------------------------------------------------------------------
// Clock seam (util/clock) and cooperative stop (util/cancel).

TEST(Clock, SteadyClockAdvancesMonotonically) {
  const Clock& clock = steady_clock();
  const std::uint64_t a = clock.now_us();
  const std::uint64_t b = clock.now_us();
  EXPECT_GE(b, a);
  clock.sleep_us(1000);
  EXPECT_GE(clock.now_us(), a + 1000);
}

TEST(Clock, FakeClockIsScripted) {
  FakeClock clock(100);
  EXPECT_EQ(clock.now_us(), 100u);
  clock.advance_us(50);
  EXPECT_EQ(clock.now_us(), 150u);
  clock.set_us(10);
  EXPECT_EQ(clock.now_us(), 10u);

  // sleep advances scripted time and logs the total, without blocking.
  clock.sleep_us(500);
  EXPECT_EQ(clock.now_us(), 510u);
  clock.sleep_us(250);
  EXPECT_EQ(clock.total_slept_us(), 750u);

  // Auto-advance: every query ticks time forward deterministically.
  clock.set_us(0);
  clock.auto_advance_us(7);
  EXPECT_EQ(clock.now_us(), 7u);
  EXPECT_EQ(clock.now_us(), 14u);
  clock.auto_advance_us(0);
  EXPECT_EQ(clock.now_us(), 14u);
}

TEST(Cancel, TokenSharesOneFlagAcrossCopies) {
  const CancelToken unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.cancelled());
  unarmed.cancel();  // no-op, no crash
  EXPECT_FALSE(unarmed.cancelled());

  const CancelToken token = CancelToken::make();
  const CancelToken copy = token;
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(Cancel, DeadlineExpiresOnItsClock) {
  FakeClock clock(1000);
  const Deadline unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.expired());

  const Deadline d = Deadline::after(clock, 500);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
  clock.advance_us(499);
  EXPECT_FALSE(d.expired());
  clock.advance_us(1);
  EXPECT_TRUE(d.expired());
}

TEST(Cancel, StopCheckRanksCancellationOverDeadline) {
  FakeClock clock;
  const CancelToken token = CancelToken::make();
  const StopCheck stop(token, Deadline::after(clock, 10));
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.poll(), StopReason::kNone);
  clock.advance_us(20);
  EXPECT_EQ(stop.poll(), StopReason::kDeadline);
  token.cancel();
  EXPECT_EQ(stop.poll(), StopReason::kCancelled);

  const StopCheck idle;
  EXPECT_FALSE(idle.armed());
  EXPECT_EQ(idle.poll(), StopReason::kNone);
  idle.throw_if_stopped("test");  // unarmed: never throws

  try {
    stop.throw_if_stopped("test.site");
    FAIL() << "expected SolveAborted";
  } catch (const SolveAborted& aborted) {
    EXPECT_EQ(aborted.reason(), StopReason::kCancelled);
    EXPECT_NE(std::string(aborted.what()).find("cancel"), std::string::npos);
  }
}

}  // namespace
}  // namespace dp
