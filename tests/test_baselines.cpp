// Tests for the baseline algorithms: validity, approximation floors, and
// resource metering.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/greedy.hpp"
#include "test_helpers.hpp"

namespace dp::baselines {
namespace {

class FilteringParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilteringParam, ValidAndConstantFactor) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(50, 350, seed * 7 + 2);
  gen::weight_uniform(g, 1.0, 32.0, seed + 1);
  ResourceMeter meter;
  const Matching m = filtering_matching(g, 2.0, seed, &meter);
  ASSERT_TRUE(m.is_valid(g));
  const double opt = max_weight_matching(g).weight(g);
  // Lattanzi-style filtering is an O(1) approximation; assert a generous
  // constant floor.
  EXPECT_GE(m.weight(g), opt / 8.0) << "seed " << seed;
  EXPECT_GT(meter.rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FilteringParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Filtering, RoundsGrowSlowlyWithDensity) {
  // For m <= budget, a single round per weight class suffices.
  Graph g = gen::gnm(100, 400, 5);
  gen::weight_unit(g);
  ResourceMeter meter;
  filtering_matching(g, 2.0, 6, &meter);
  EXPECT_LE(meter.rounds(), 3u);
}

TEST(FilteringBMatching, ValidAndSaturating) {
  Graph g = gen::gnm(30, 200, 9);
  gen::weight_uniform(g, 1.0, 8.0, 10);
  const Capacities b = gen::random_capacities(30, 1, 5, 11);
  const BMatching bm = filtering_b_matching(g, b, 2.0, 12);
  ASSERT_TRUE(bm.is_valid(g, b));
  EXPECT_GT(bm.weight(g), 0.0);
  const double greedy = greedy_b_matching(g, b).weight(g);
  EXPECT_GE(bm.weight(g), greedy / 4.0);
}

TEST(StreamingGreedy, MaximalAndMetersOnePass) {
  const Graph g = gen::gnm(40, 200, 13);
  ResourceMeter meter;
  const Matching m = streaming_greedy_matching(g, &meter);
  ASSERT_TRUE(m.is_valid(g));
  EXPECT_EQ(meter.passes(), 1u);
  // Maximality: every edge touches a matched vertex.
  const auto mate = m.mates(g);
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(mate[e.u] != Matching::kUnmatched ||
                mate[e.v] != Matching::kUnmatched);
  }
}

class PazSchwartzmanParam : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PazSchwartzmanParam, NearHalfApprox) {
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(16, 0.4, seed + 40);
  if (g.num_edges() == 0) return;
  const Matching m = paz_schwartzman_matching(g, 0.01);
  ASSERT_TRUE(m.is_valid(g));
  const double opt = test::opt_weight(g);
  // Local-ratio guarantee ~ 1/2 - eps; assert 0.4 with slack.
  EXPECT_GE(m.weight(g), 0.4 * opt - 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PazSchwartzmanParam,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(PazSchwartzman, StackSpaceMetered) {
  const Graph g = gen::gnm(60, 600, 15);
  ResourceMeter meter;
  paz_schwartzman_matching(g, 0.1, &meter);
  EXPECT_EQ(meter.passes(), 1u);
  EXPECT_GT(meter.peak_edges(), 0u);
  EXPECT_LT(meter.peak_edges(), g.num_edges());
}

TEST(ImprovementMatching, ValidAndReactsToHeavyLateEdges) {
  // Heavy edge arrives last and should displace light earlier matches.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 100.0);
  const Matching m = improvement_matching(g, 0.5);
  ASSERT_TRUE(m.is_valid(g));
  EXPECT_DOUBLE_EQ(m.weight(g), 100.0);
}

TEST(ImprovementMatching, RandomValid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = test::small_random_graph(14, 0.4, seed + 70);
    const Matching m = improvement_matching(g, 0.2);
    ASSERT_TRUE(m.is_valid(g));
  }
}

TEST(SampleAndSolve, OneRoundAndSublinearSample) {
  const Graph g = gen::gnm(60, 1500, 19);
  ResourceMeter meter;
  const Matching m = sample_and_solve(g, 1.3, 20, &meter);
  ASSERT_TRUE(m.is_valid(g));
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_LT(meter.peak_edges(), g.num_edges());
  EXPECT_GT(m.weight(g), 0.0);
}

TEST(SampleAndSolve, TakesAllWhenBudgetCoversM) {
  const Graph g = gen::gnm(20, 50, 21);
  const Matching sampled = sample_and_solve(g, 2.0, 22);
  // Budget n^{1.5} = ~90 > m: should behave like an offline solve.
  const double opt = max_weight_matching(g).weight(g);
  EXPECT_GE(sampled.weight(g), 0.95 * opt);
}

}  // namespace
}  // namespace dp::baselines
