#pragma once
// Shared helpers for the test suite: small random graph factories and
// brute-force references.

#include <cstdint>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "matching/exact_small.hpp"
#include "util/rng.hpp"

namespace dp::test {

/// Random graph with n <= 24 vertices, random weights in [1, 10].
inline Graph small_random_graph(std::size_t n, double density,
                                std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform_real() < density) {
        g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j),
                   1.0 + 9.0 * rng.uniform_real());
      }
    }
  }
  return g;
}

/// Random graph with integer weights in [1, max_w] (exact blossom is exact
/// on these).
inline Graph small_random_int_graph(std::size_t n, double density,
                                    std::int64_t max_w, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform_real() < density) {
        g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j),
                   static_cast<double>(rng.uniform_int(1, max_w)));
      }
    }
  }
  return g;
}

/// Ground-truth maximum matching weight via bitmask DP (n <= 24).
inline double opt_weight(const Graph& g) {
  return exact_matching_weight_small(g);
}

}  // namespace dp::test
