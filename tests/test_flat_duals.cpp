// Tests for the flat dual-state subsystem: the SparseDuals/FlatDuals
// containers, the O(1) level-weight prefix queries, and — most importantly —
// randomized equivalence of the flat MicroOracle path against the retained
// map-based reference (core/oracle_ref.hpp), plus bitwise determinism of
// the parallel sweeps across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "core/dual_state.hpp"
#include "core/flat_duals.hpp"
#include "core/oracle.hpp"
#include "core/oracle_ref.hpp"
#include "core/weight_levels.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {
namespace {

TEST(SparseDuals, MapSurfaceAndAppend) {
  SparseDuals d;
  EXPECT_TRUE(d.empty());
  d[7] = 1.5;
  d[3] = 2.5;  // sorted insert in front
  d[7] += 0.5;
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.at(3), 2.5);
  EXPECT_DOUBLE_EQ(d.at(7), 2.0);
  EXPECT_DOUBLE_EQ(d.get(5), 0.0);
  EXPECT_EQ(d.find(5), d.end());
  ASSERT_NE(d.find(3), d.end());
  EXPECT_DOUBLE_EQ(d.find(3)->second, 2.5);
  EXPECT_THROW(d.at(5), std::out_of_range);
  // Keys iterate in sorted order.
  d.append(11, 4.0);
  std::vector<std::uint64_t> keys;
  for (const auto& [key, value] : d) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{3, 7, 11}));
  // Out-of-order append degrades to the sorted insert instead of breaking
  // the invariant.
  d.append(5, 1.0);
  EXPECT_DOUBLE_EQ(d.at(5), 1.0);
  keys.clear();
  for (const auto& [key, value] : d) keys.push_back(key);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(FlatDuals, ActiveListAndClear) {
  FlatDuals f(100);
  f.add(10, 1.0);
  f.add(10, 0.5);
  f.set(42, 3.0);
  EXPECT_EQ(f.active_count(), 2u);
  EXPECT_DOUBLE_EQ(f.get(10), 1.5);
  EXPECT_DOUBLE_EQ(f.get(42), 3.0);
  EXPECT_DOUBLE_EQ(f.get(11), 0.0);
  EXPECT_TRUE(f.contains(42));
  EXPECT_FALSE(f.contains(11));
  f.scale_all(2.0);
  EXPECT_DOUBLE_EQ(f.get(10), 3.0);
  const SparseDuals sparse = f.to_sparse();
  EXPECT_EQ(sparse.size(), 2u);
  EXPECT_DOUBLE_EQ(sparse.get(42), 6.0);
  f.clear();
  EXPECT_EQ(f.active_count(), 0u);
  EXPECT_DOUBLE_EQ(f.get(10), 0.0);
  EXPECT_FALSE(f.contains(10));
}

TEST(WeightLevels, PrefixRangeMatchesLoop) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 7.0);
  g.add_edge(2, 3, 64.0);
  const LevelGraph lg(g, Capacities::unit(4), 0.2);
  const int L = lg.num_levels();
  for (int lo = -2; lo <= L + 1; ++lo) {
    for (int hi = lo; hi <= L + 1; ++hi) {
      double expect = 0;
      for (int l = std::max(lo, 0); l <= std::min(hi, L - 1); ++l) {
        expect += lg.level_weight(l);
      }
      EXPECT_NEAR(lg.level_weight_range(lo, hi), expect, 1e-9 * (1 + expect))
          << "range [" << lo << ", " << hi << "]";
    }
  }
  EXPECT_DOUBLE_EQ(lg.level_weight_range(3, 2), 0.0);
}

TEST(ThreadPool, ParallelChunksBoundariesIgnorePoolSize) {
  // Chunk decomposition must depend only on the grain. Compare the chunk
  // triples observed with 1 worker vs 4 workers.
  auto collect = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::array<std::size_t, 3>> chunks(64);
    std::atomic<std::size_t> count{0};
    pool.parallel_chunks(5, 103, 13,
                         [&](std::size_t c, std::size_t lo, std::size_t hi) {
                           chunks[c] = {c, lo, hi};
                           ++count;
                         });
    chunks.resize(count.load());
    return chunks;
  };
  const auto one = collect(1);
  const auto four = collect(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t c = 0; c < one.size(); ++c) {
    EXPECT_EQ(one[c], four[c]);
  }
  // Full coverage, no overlap.
  std::size_t covered = 0;
  for (const auto& [c, lo, hi] : one) covered += hi - lo;
  EXPECT_EQ(covered, 103u - 5u);
}

TEST(GraphAdjacency, ConcurrentLazyBuildIsConsistent) {
  Graph g = gen::gnm(200, 1200, 5);
  // First touch happens concurrently from many tasks: the mutex-guarded
  // build must produce one consistent CSR view.
  ThreadPool pool(4);
  std::vector<std::size_t> degree_sum(8, 0);
  pool.parallel_for(0, degree_sum.size(), [&](std::size_t t) {
    std::size_t sum = 0;
    for (Vertex v = 0; v < 200; ++v) sum += g.degree(v);
    degree_sum[t] = sum;
  });
  for (std::size_t t = 1; t < degree_sum.size(); ++t) {
    EXPECT_EQ(degree_sum[t], degree_sum[0]);
  }
  EXPECT_EQ(degree_sum[0], 2 * g.num_edges());
  // add_edge invalidates; an explicit rebuild before the next parallel use
  // is the documented contract.
  g.add_edge(0, 199, 2.0);
  g.build_adjacency();
  pool.parallel_for(0, degree_sum.size(), [&](std::size_t t) {
    std::size_t sum = 0;
    for (Vertex v = 0; v < 200; ++v) sum += g.degree(v);
    degree_sum[t] = sum;
  });
  EXPECT_EQ(degree_sum[0], 2 * g.num_edges());
}

// ---- Randomized oracle equivalence ----------------------------------------

struct OracleInstance {
  std::unique_ptr<Graph> g;
  Capacities b;
  std::unique_ptr<LevelGraph> lg;
  std::vector<StoredMultiplier> us;
  ZetaMap zeta;
  double beta = 0;
};

OracleInstance make_instance(std::uint64_t seed, bool b_matching) {
  Rng rng(seed);
  OracleInstance inst;
  const std::size_t n = 40 + rng.uniform(120);
  const std::size_t m = 2 * n + rng.uniform(4 * n);
  inst.g = std::make_unique<Graph>(gen::gnm(n, m, seed * 7 + 1));
  gen::weight_uniform(*inst.g, 1.0, 24.0, seed * 7 + 2);
  if (b_matching) {
    std::vector<std::int64_t> caps(n);
    for (auto& c : caps) c = 1 + static_cast<std::int64_t>(rng.uniform(3));
    inst.b = Capacities(std::move(caps));
  } else {
    inst.b = Capacities::unit(n);
  }
  inst.lg = std::make_unique<LevelGraph>(*inst.g, inst.b, 0.2);
  const auto L = static_cast<std::uint64_t>(inst.lg->num_levels());
  std::vector<std::uint64_t> row_keys;
  for (EdgeId e : inst.lg->retained()) {
    if (rng.uniform_real() < 0.5) continue;
    inst.us.push_back(StoredMultiplier{e, rng.uniform_real(0.05, 2.0)});
    const Edge& edge = inst.g->edge(e);
    const auto k = static_cast<std::uint64_t>(inst.lg->level(e));
    row_keys.push_back(static_cast<std::uint64_t>(edge.u) * L + k);
    row_keys.push_back(static_cast<std::uint64_t>(edge.v) * L + k);
  }
  std::sort(row_keys.begin(), row_keys.end());
  row_keys.erase(std::unique(row_keys.begin(), row_keys.end()),
                 row_keys.end());
  for (const std::uint64_t kk : row_keys) {
    if (rng.uniform_real() < 0.3) continue;  // leave some rows without zeta
    inst.zeta.append(kk, rng.uniform_real(0.001, 0.5));
  }
  inst.beta = rng.uniform_real(0.5, 4.0) * static_cast<double>(n);
  return inst;
}

void expect_points_match(const DualPoint& flat, const DualPoint& mapped,
                         double tol) {
  ASSERT_EQ(flat.xik.size(), mapped.xik.size());
  auto fit = flat.xik.begin();
  for (const auto& [key, value] : mapped.xik) {
    ASSERT_NE(fit, flat.xik.end());
    EXPECT_EQ(fit->first, key);
    EXPECT_NEAR(fit->second, value, tol * (1.0 + std::abs(value)));
    ++fit;
  }
  ASSERT_EQ(flat.odd_sets.size(), mapped.odd_sets.size());
  for (std::size_t s = 0; s < flat.odd_sets.size(); ++s) {
    EXPECT_EQ(flat.odd_sets[s].level, mapped.odd_sets[s].level);
    EXPECT_EQ(flat.odd_sets[s].members, mapped.odd_sets[s].members);
    EXPECT_NEAR(flat.odd_sets[s].value, mapped.odd_sets[s].value,
                tol * (1.0 + std::abs(mapped.odd_sets[s].value)));
  }
}

TEST(OracleEquivalence, RunMatchesMapReferenceRandomized) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const bool b_matching = seed % 3 == 0;
    const OracleInstance inst = make_instance(seed, b_matching);
    OracleConfig config;
    config.odd.eps = 0.2;
    config.threads = 1;
    const MicroOracle flat(*inst.lg, inst.b, config);
    const ref::MicroOracleRef mapped(*inst.lg, inst.b, config);
    for (const double rho : {0.02, 0.2, 1.0, 5.0}) {
      const MicroResult a = flat.run(inst.us, inst.zeta, inst.beta, rho);
      const MicroResult c = mapped.run(inst.us, inst.zeta, inst.beta, rho);
      ASSERT_EQ(a.kind, c.kind) << "seed " << seed << " rho " << rho;
      EXPECT_NEAR(a.gamma, c.gamma, 1e-9 * (1.0 + std::abs(c.gamma)));
      expect_points_match(a.x, c.x, 1e-9);
      // The weighted Po/qo functionals agree on either path's point.
      EXPECT_NEAR(flat.weighted_po(a.x, inst.zeta),
                  mapped.weighted_po(a.x, inst.zeta),
                  1e-9 * (1.0 + std::abs(flat.weighted_po(a.x, inst.zeta))));
      EXPECT_NEAR(flat.weighted_qo(inst.zeta), mapped.weighted_qo(inst.zeta),
                  1e-9 * (1.0 + flat.weighted_qo(inst.zeta)));
    }
  }
}

TEST(OracleEquivalence, LagrangianMatchesMapReference) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const OracleInstance inst = make_instance(seed, seed % 2 == 0);
    OracleConfig config;
    config.odd.eps = 0.2;
    config.threads = 1;
    const MicroOracle flat(*inst.lg, inst.b, config);
    const ref::MicroOracleRef mapped(*inst.lg, inst.b, config);
    const MicroResult a = flat.run_lagrangian(inst.us, inst.zeta, inst.beta);
    const MicroResult c =
        mapped.run_lagrangian(inst.us, inst.zeta, inst.beta);
    ASSERT_EQ(a.kind, c.kind) << "seed " << seed;
    if (a.kind == MicroResult::Kind::kDual) {
      // The binary search can take ulp-divergent branches, so compare the
      // aggregate functionals instead of coordinates.
      const double po_a = flat.weighted_po(a.x, inst.zeta);
      const double po_c = flat.weighted_po(c.x, inst.zeta);
      EXPECT_NEAR(po_a, po_c, 1e-6 * (1.0 + std::abs(po_c)));
    }
  }
}

TEST(OracleDeterminism, ResultsIndependentOfThreadCount) {
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    const OracleInstance inst = make_instance(seed, seed % 2 == 1);
    OracleConfig serial_config;
    serial_config.odd.eps = 0.2;
    serial_config.threads = 1;
    OracleConfig parallel_config = serial_config;
    parallel_config.threads = 4;
    parallel_config.parallel_grain = 8;  // force many chunks
    const MicroOracle serial(*inst.lg, inst.b, serial_config);
    const MicroOracle parallel(*inst.lg, inst.b, parallel_config);
    for (const double rho : {0.05, 0.7, 3.0}) {
      const MicroResult a = serial.run(inst.us, inst.zeta, inst.beta, rho);
      const MicroResult c = parallel.run(inst.us, inst.zeta, inst.beta, rho);
      ASSERT_EQ(a.kind, c.kind);
      // Bitwise identical: fixed chunk boundaries + chunk-ordered
      // reductions make thread count invisible to the arithmetic.
      EXPECT_EQ(a.gamma, c.gamma);
      EXPECT_TRUE(a.x.xik == c.x.xik);
      ASSERT_EQ(a.x.odd_sets.size(), c.x.odd_sets.size());
      for (std::size_t s = 0; s < a.x.odd_sets.size(); ++s) {
        EXPECT_EQ(a.x.odd_sets[s].members, c.x.odd_sets[s].members);
        EXPECT_EQ(a.x.odd_sets[s].value, c.x.odd_sets[s].value);
      }
      EXPECT_EQ(serial.weighted_po(a.x, inst.zeta),
                parallel.weighted_po(a.x, inst.zeta));
    }
  }
}

/// Planted instance whose MicroOracle output is a family of odd-set duals:
/// disjoint triangles on geometrically spaced weight levels, uniform
/// stored multipliers, no packing pressure, and a budget beta inside the
/// window where Case B (odd-set duals) fires on every separated level.
OracleInstance make_triangle_instance() {
  OracleInstance inst;
  const int K = 6;
  inst.g = std::make_unique<Graph>(3 * K);
  for (int t = 0; t < K; ++t) {
    const auto base = static_cast<Vertex>(3 * t);
    const double w = std::pow(1.9, t);
    inst.g->add_edge(base, base + 1u, w);
    inst.g->add_edge(base + 1u, base + 2u, w);
    inst.g->add_edge(base, base + 2u, w);
  }
  inst.b = Capacities::unit(3 * K);
  inst.lg = std::make_unique<LevelGraph>(*inst.g, inst.b, 0.2);
  double gamma = 0;
  for (EdgeId e : inst.lg->retained()) {
    inst.us.push_back(StoredMultiplier{e, 1.0});
    gamma += inst.lg->level_weight(inst.lg->level(e));
  }
  inst.beta = 0.45 * gamma;
  return inst;
}

TEST(OracleDeterminism, OddSetSeparationIdenticalFor1_2_8Threads) {
  const OracleInstance inst = make_triangle_instance();
  std::vector<MicroResult> results;
  for (const std::size_t threads : {1, 2, 8}) {
    OracleConfig config;
    config.odd.eps = 0.2;
    config.threads = threads;
    config.parallel_grain = 4;  // force many chunks
    const MicroOracle oracle(*inst.lg, inst.b, config);
    results.push_back(oracle.run(inst.us, inst.zeta, inst.beta, 1.0));
  }
  // The instance must actually exercise the odd-set phase (several
  // separated levels, several sets each), or this test proves nothing.
  ASSERT_EQ(results[0].kind, MicroResult::Kind::kDual);
  ASSERT_GE(results[0].x.odd_sets.size(), 6u);
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].kind, results[0].kind) << "thread variant " << r;
    EXPECT_EQ(results[r].gamma, results[0].gamma);
    EXPECT_TRUE(results[r].x.xik == results[0].x.xik);
    ASSERT_EQ(results[r].x.odd_sets.size(), results[0].x.odd_sets.size());
    for (std::size_t v = 0; v < results[0].x.odd_sets.size(); ++v) {
      EXPECT_EQ(results[r].x.odd_sets[v].level,
                results[0].x.odd_sets[v].level);
      EXPECT_EQ(results[r].x.odd_sets[v].members,
                results[0].x.odd_sets[v].members);
      EXPECT_EQ(results[r].x.odd_sets[v].value,
                results[0].x.odd_sets[v].value);
    }
  }
  // Same contract through the Lagrangian wrapper and its separation cache.
  std::vector<MicroResult> lagrangian;
  for (const std::size_t threads : {1, 2, 8}) {
    OracleConfig config;
    config.odd.eps = 0.2;
    config.threads = threads;
    config.parallel_grain = 4;
    const MicroOracle oracle(*inst.lg, inst.b, config);
    lagrangian.push_back(
        oracle.run_lagrangian(inst.us, inst.zeta, inst.beta));
  }
  for (std::size_t r = 1; r < lagrangian.size(); ++r) {
    ASSERT_EQ(lagrangian[r].kind, lagrangian[0].kind);
    EXPECT_TRUE(lagrangian[r].x.xik == lagrangian[0].x.xik);
    ASSERT_EQ(lagrangian[r].x.odd_sets.size(),
              lagrangian[0].x.odd_sets.size());
    for (std::size_t v = 0; v < lagrangian[0].x.odd_sets.size(); ++v) {
      EXPECT_EQ(lagrangian[r].x.odd_sets[v].members,
                lagrangian[0].x.odd_sets[v].members);
      EXPECT_EQ(lagrangian[r].x.odd_sets[v].value,
                lagrangian[0].x.odd_sets[v].value);
    }
  }
}

TEST(DualStateFlat, LambdaParallelMatchesSerialBitwise) {
  const OracleInstance inst = make_instance(41, false);
  const std::size_t n = inst.g->num_vertices();
  const int L = inst.lg->num_levels();
  DualState state(n, L);
  Rng rng(91);
  bool first = true;
  for (int round = 0; round < 5; ++round) {
    DualPoint p;
    std::uint64_t key = rng.uniform(3);
    while (key < n * static_cast<std::size_t>(L)) {
      p.xik.append(key, rng.uniform_real(0.05, 1.5));
      key += 1 + rng.uniform(static_cast<std::size_t>(2 * L));
    }
    OddSetVar var;
    var.level = static_cast<int>(rng.uniform(static_cast<std::size_t>(L)));
    const auto v0 = static_cast<Vertex>(rng.uniform(n - 3));
    var.members = {v0, v0 + 1u, v0 + 2u};
    var.value = rng.uniform_real(0.1, 1.0);
    p.odd_sets.push_back(var);
    if (first) {
      state.assign(p);
      first = false;
    } else {
      state.blend(p, 0.3);
    }
  }
  const double serial = state.lambda(*inst.lg);
  ThreadPool pool(4);
  // min-reductions over fixed chunks are exact: any pool size and any
  // grain must reproduce the serial value bitwise.
  for (const std::size_t grain : {1, 7, 64, 4096}) {
    EXPECT_EQ(serial, state.lambda(*inst.lg, &pool, grain));
  }
}

TEST(DualStateFlat, BlendMatchesNaiveModel) {
  // Blend random sparse points into DualState and mirror the arithmetic
  // with a naive dense model (no scale trick): x must agree to fp noise.
  Rng rng(77);
  const std::size_t n = 30;
  const int L = 6;
  DualState state(n, L);
  std::vector<double> model(n * L, 0.0);
  bool first = true;
  for (int round = 0; round < 60; ++round) {
    DualPoint p;
    std::uint64_t key = 0;
    while (true) {
      key += 1 + rng.uniform(17);
      if (key >= n * L) break;
      p.xik.append(key, rng.uniform_real(0.1, 2.0));
    }
    const double sigma = first ? 1.0 : rng.uniform_real(0.05, 0.6);
    if (first) {
      state.assign(p);
      first = false;
    } else {
      state.blend(p, sigma);
    }
    for (std::size_t slot = 0; slot < model.size(); ++slot) {
      model[slot] = (1.0 - sigma) * model[slot] + sigma * p.xik.get(slot);
    }
  }
  for (std::size_t slot = 0; slot < model.size(); ++slot) {
    const auto i = static_cast<Vertex>(slot / L);
    const int k = static_cast<int>(slot % L);
    EXPECT_NEAR(state.x(i, k), model[slot], 1e-12 * (1.0 + model[slot]));
  }
}

}  // namespace
}  // namespace dp::core
