// Tests for the sketch substrate: 1-sparse recovery, l0-sampling, AGM graph
// sketches and the sketch-based spanning forest (the paper's "1 sampling
// round, O(log n) deferred uses" example).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/agm.hpp"
#include "sketch/l0sampler.hpp"
#include "sketch/onesparse.hpp"
#include "sketch/spanning_forest.hpp"
#include "util/rng.hpp"

namespace dp {
namespace {

TEST(OneSparse, RecoversSingleton) {
  OneSparse s(12345);
  s.update(42, 7);
  const auto rec = s.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 42u);
  EXPECT_EQ(rec->count, 7);
}

TEST(OneSparse, RejectsTwoSparse) {
  Rng rng(1);
  int false_positives = 0;
  for (int trial = 0; trial < 200; ++trial) {
    OneSparse s(rng.uniform(MersenneField::kPrime - 2) + 1);
    s.update(10 + trial, 1);
    s.update(20 + trial, 1);
    if (s.recover().has_value()) ++false_positives;
  }
  EXPECT_LE(false_positives, 1);
}

TEST(OneSparse, CancellationToZero) {
  OneSparse s(999);
  s.update(5, 3);
  s.update(5, -3);
  EXPECT_TRUE(s.is_zero());
  EXPECT_FALSE(s.recover().has_value());
}

TEST(OneSparse, MergeIsLinear) {
  OneSparse a(777), b(777);
  a.update(9, 2);
  b.update(9, 3);
  a.merge(b);
  const auto rec = a.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->count, 5);
}

TEST(L0Sampler, SamplesNonzeroCoordinate) {
  Rng rng(3);
  const L0SamplerSeed seed(20, 8, rng);
  L0Sampler sampler(seed);
  std::set<std::uint64_t> support{10, 500, 123456, 9999999};
  for (std::uint64_t idx : support) sampler.update(idx, 1);
  const auto rec = sampler.sample();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(support.count(rec->index)) << rec->index;
}

TEST(L0Sampler, ZeroVectorReturnsNothing) {
  Rng rng(4);
  const L0SamplerSeed seed(16, 4, rng);
  L0Sampler sampler(seed);
  EXPECT_FALSE(sampler.sample().has_value());
  sampler.update(77, 1);
  sampler.update(77, -1);
  EXPECT_FALSE(sampler.sample().has_value());
}

TEST(L0Sampler, MergeCancelsSharedSupport) {
  Rng rng(5);
  const L0SamplerSeed seed(20, 8, rng);
  L0Sampler a(seed), b(seed);
  a.update(100, 1);
  a.update(200, 1);
  b.update(100, -1);  // cancels after merge
  a.merge(b);
  const auto rec = a.sample();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 200u);
}

TEST(L0Sampler, SuccessRateHigh) {
  Rng rng(6);
  const L0SamplerSeed seed(24, 8, rng);
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    L0Sampler sampler(seed);
    // Random support of size ~ trial.
    Rng inner(trial + 1000);
    std::set<std::uint64_t> support;
    for (int i = 0; i <= trial; ++i) support.insert(inner.uniform(1 << 20));
    for (std::uint64_t idx : support) sampler.update(idx, 1);
    const auto rec = sampler.sample();
    if (rec.has_value() && support.count(rec->index)) ++successes;
  }
  EXPECT_GE(successes, 45);
}

TEST(AgmSketch, SamplesBoundaryEdge) {
  // Two cliques joined by a single edge; the boundary of clique 1 is that
  // edge alone, so sampling must return it.
  Graph g(8);
  for (Vertex i = 0; i < 4; ++i) {
    for (Vertex j = i + 1; j < 4; ++j) g.add_edge(i, j);
  }
  for (Vertex i = 4; i < 8; ++i) {
    for (Vertex j = i + 1; j < 8; ++j) g.add_edge(i, j);
  }
  g.add_edge(0, 4);
  Rng rng(7);
  const L0SamplerSeed seed(16, 8, rng);
  const AgmSketch sketch(g, seed);
  std::vector<char> in_set{1, 1, 1, 1, 0, 0, 0, 0};
  const auto edge = sketch.sample_boundary(in_set);
  ASSERT_TRUE(edge.has_value());
  const auto lo = std::min(edge->u, edge->v);
  const auto hi = std::max(edge->u, edge->v);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 4u);
}

TEST(AgmSketch, WordsAccounted) {
  const Graph g = gen::gnm(20, 40, 8);
  Rng rng(8);
  const L0SamplerSeed seed(12, 4, rng);
  ResourceMeter meter;
  const AgmSketch sketch(g, seed, &meter);
  EXPECT_EQ(meter.sketch_words(), sketch.words());
  EXPECT_GT(sketch.words(), 0u);
}

class SketchForestParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchForestParam, FindsAllComponents) {
  const std::uint64_t seed = GetParam();
  // A few disconnected clusters.
  const std::size_t k = 2 + seed % 3;
  Graph g(k * 12);
  Rng rng(seed);
  for (std::size_t c = 0; c < k; ++c) {
    const auto base = static_cast<Vertex>(c * 12);
    for (Vertex i = 0; i < 12; ++i) {
      for (Vertex j = i + 1; j < 12; ++j) {
        if (rng.uniform_real() < 0.4) g.add_edge(base + i, base + j);
      }
    }
    // Ensure each cluster is connected (a path).
    for (Vertex i = 0; i + 1 < 12; ++i) g.add_edge(base + i, base + i + 1);
  }
  ResourceMeter meter;
  const SketchForestResult result =
      sketch_spanning_forest(g, seed * 97 + 11, &meter);
  EXPECT_EQ(result.components, k);
  EXPECT_EQ(result.sampling_rounds, 1u);
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_GE(result.forest.size(), g.num_vertices() - k);
  // Forest edges must be real edges of g.
  std::set<std::pair<Vertex, Vertex>> edge_set;
  for (const Edge& e : g.edges()) {
    edge_set.emplace(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  for (const Edge& e : result.forest) {
    EXPECT_TRUE(edge_set.count({std::min(e.u, e.v), std::max(e.u, e.v)}));
  }
}

INSTANTIATE_TEST_SUITE_P(Clusters, SketchForestParam,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SketchForest, UseStepsLogarithmic) {
  const Graph g = gen::gnm(128, 600, 21);
  const SketchForestResult result = sketch_spanning_forest(g, 22);
  // Boruvka over sketches: O(log n) deferred use steps.
  EXPECT_LE(result.use_steps, 9u);
}

}  // namespace
}  // namespace dp
