// Tests for Dinic max-flow, the arena-backed CSR flow network, and the
// Gomory-Hu tree (validated against brute-force min cuts on random small
// graphs and against Dinic s-t max-flows on larger ones).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/dinic.hpp"
#include "graph/flow_arena.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "util/rng.hpp"

namespace dp {
namespace {

/// Brute-force s-t min cut by enumerating all bipartitions (n <= 16).
std::int64_t brute_min_cut(std::size_t n, const std::vector<Edge>& edges,
                           const std::vector<std::int64_t>& cap,
                           std::uint32_t s, std::uint32_t t) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    if (!(mask >> s & 1) || (mask >> t & 1)) continue;
    std::int64_t cut = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const bool u_in = mask >> edges[e].u & 1;
      const bool v_in = mask >> edges[e].v & 1;
      if (u_in != v_in) cut += cap[e];
    }
    best = std::min(best, cut);
  }
  return best;
}

TEST(Dinic, SimplePath) {
  Dinic d(3);
  d.add_arc(0, 1, 5);
  d.add_arc(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPaths) {
  Dinic d(4);
  d.add_arc(0, 1, 2);
  d.add_arc(1, 3, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 3, 1);
  EXPECT_EQ(d.max_flow(0, 3), 3);
}

TEST(Dinic, UndirectedEdgeBothWays) {
  Dinic d(2);
  d.add_edge(0, 1, 4);
  EXPECT_EQ(d.max_flow(0, 1), 4);
  EXPECT_EQ(d.max_flow(1, 0), 4);  // reusable after reset
}

TEST(Dinic, MinCutSideSeparates) {
  Dinic d(4);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 1);
  d.add_edge(2, 3, 10);
  EXPECT_EQ(d.max_flow(0, 3), 1);
  const auto side = d.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

class GomoryHuParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GomoryHuParam, AllPairsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 5 + seed % 5;  // 5..9
  Graph g = gen::gnm(n, std::min(n * (n - 1) / 2, 2 * n), seed * 17 + 3);
  std::vector<std::int64_t> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform_int(1, 9);

  const GomoryHuTree tree = gomory_hu(n, g.edges(), cap);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t t = s + 1; t < n; ++t) {
      EXPECT_EQ(tree.min_cut(s, t),
                brute_min_cut(n, g.edges(), cap, s, t))
          << "pair (" << s << "," << t << ") seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GomoryHuParam,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(GomoryHu, CutSideIsFundamentalCut) {
  // Path graph: tree should reflect the path cuts.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<std::int64_t> cap{3, 1, 2};
  const GomoryHuTree tree = gomory_hu(4, g.edges(), cap);
  EXPECT_EQ(tree.min_cut(0, 3), 1);
  EXPECT_EQ(tree.min_cut(0, 1), 3);
  // Every cut side must contain its defining vertex.
  for (std::uint32_t v = 1; v < 4; ++v) {
    const auto side = tree.cut_side(v);
    EXPECT_NE(std::find(side.begin(), side.end(), v), side.end());
  }
}

TEST(GomoryHu, DisconnectedGraphZeroCuts) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<std::int64_t> cap{5, 7};
  const GomoryHuTree tree = gomory_hu(4, g.edges(), cap);
  EXPECT_EQ(tree.min_cut(0, 2), 0);
  EXPECT_EQ(tree.min_cut(0, 1), 5);
  EXPECT_EQ(tree.min_cut(2, 3), 7);
}

TEST(GomoryHu, DepthAndChildrenMatchParentWalk) {
  Rng rng(5);
  Graph g = gen::gnm(24, 60, 11);
  std::vector<std::int64_t> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform_int(1, 9);
  const GomoryHuTree tree = gomory_hu(24, g.edges(), cap);
  // depth[v] equals the naive parent-chain length.
  for (std::uint32_t v = 0; v < tree.size(); ++v) {
    int d = 0;
    std::uint32_t x = v;
    while (tree.parent[x] != x) {
      ++d;
      x = tree.parent[x];
    }
    EXPECT_EQ(tree.depth[v], d);
  }
  // cut_side(v) is exactly the set of vertices whose path hits v.
  for (std::uint32_t v = 1; v < tree.size(); ++v) {
    std::vector<std::uint32_t> expect;
    for (std::uint32_t w = 0; w < tree.size(); ++w) {
      std::uint32_t x = w;
      while (true) {
        if (x == v) {
          expect.push_back(w);
          break;
        }
        if (tree.parent[x] == x) break;
        x = tree.parent[x];
      }
    }
    std::vector<std::uint32_t> side = tree.cut_side(v);
    std::sort(side.begin(), side.end());
    EXPECT_EQ(side, expect) << "vertex " << v;
  }
}

/// Randomized equivalence on larger graphs: every tree query must match an
/// independent s-t max-flow (Dinic is the reference implementation).
class GomoryHuVsMaxFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GomoryHuVsMaxFlow, TreeQueriesMatchDinic) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  const std::size_t n = 20 + seed % 30;  // 20..49
  Graph g = gen::gnm(n, 3 * n, seed * 13 + 1);
  std::vector<std::int64_t> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform_int(1, 20);

  const GomoryHuTree tree = gomory_hu(n, g.edges(), cap);
  Dinic dinic(n);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    dinic.add_edge(g.edge(static_cast<EdgeId>(e)).u,
                   g.edge(static_cast<EdgeId>(e)).v, cap[e]);
  }
  for (int trial = 0; trial < 40; ++trial) {
    const auto s = static_cast<std::uint32_t>(rng.uniform(n));
    const auto t = static_cast<std::uint32_t>(rng.uniform(n));
    if (s == t) continue;
    EXPECT_EQ(tree.min_cut(s, t), dinic.max_flow(s, t))
        << "pair (" << s << "," << t << ") seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GomoryHuVsMaxFlow,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(FlowArena, MatchesDinicAndResetsBetweenFlows) {
  Rng rng(3);
  for (int inst = 0; inst < 10; ++inst) {
    const std::size_t n = 8 + static_cast<std::size_t>(inst);
    Graph g = gen::gnm(n, 3 * n, 100 + static_cast<std::uint64_t>(inst));
    std::vector<ArenaEdge> edges;
    Dinic dinic(n);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto c = rng.uniform_int(1, 12);
      edges.push_back(ArenaEdge{g.edge(e).u, g.edge(e).v, c});
      dinic.add_edge(g.edge(e).u, g.edge(e).v, c);
    }
    FlowArena net;
    net.build(n, edges);
    // Repeated flows on the same arena must agree with a fresh Dinic
    // (max_flow restores capacities in place).
    for (int trial = 0; trial < 15; ++trial) {
      const auto s = static_cast<std::uint32_t>(rng.uniform(n));
      const auto t = static_cast<std::uint32_t>(rng.uniform(n));
      if (s == t) continue;
      EXPECT_EQ(net.max_flow(s, t), dinic.max_flow(s, t));
    }
  }
}

TEST(FlowArena, DisableVertexAndBaseCapEdits) {
  // Path 0-1-2-3 with a bypass 0-3.
  std::vector<ArenaEdge> edges{{0, 1, 5}, {1, 2, 3}, {2, 3, 5}, {0, 3, 2}};
  FlowArena net;
  net.build(4, edges);
  EXPECT_EQ(net.max_flow(0, 3), 5);  // 3 through the path + 2 bypass
  // Contracting vertex 1 severs the path; only the bypass remains.
  net.disable_vertex(1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
  // Raising the bypass rest-state capacity takes effect on the next flow.
  net.set_edge_base_cap(3, 9);
  EXPECT_EQ(net.edge_base_cap(3), 9);
  EXPECT_EQ(net.max_flow(0, 3), 9);
}

TEST(GomoryHu, CachedTreeReusedWhileNetworkUnchanged) {
  Rng rng(77);
  const std::size_t n = 24;
  const Graph g = gen::gnm(n, 90, 78);
  std::vector<ArenaEdge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.push_back(ArenaEdge{std::min(g.edge(e).u, g.edge(e).v),
                              std::max(g.edge(e).u, g.edge(e).v),
                              static_cast<std::int64_t>(1 + rng.uniform(9))});
  }
  aggregate_parallel_edges(edges);
  FlowArena net;
  net.build(n, edges);

  GomoryHuTree tree;
  GomoryHuStamp stamp;
  EXPECT_TRUE(gomory_hu_from_arena_cached(net, nullptr, tree, stamp));
  const std::size_t flows_after_build = net.flows_run();
  EXPECT_EQ(flows_after_build, n - 1);

  // Same network (a no-op rebuild keeps version()): the cached call must
  // reuse the tree without running a single flow…
  net.build(n, edges);
  EXPECT_FALSE(gomory_hu_from_arena_cached(net, nullptr, tree, stamp));
  EXPECT_EQ(net.flows_run(), flows_after_build);
  // …and the reused tree answers every pair exactly like a fresh one.
  const GomoryHuTree fresh = gomory_hu_from_arena(net);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      EXPECT_EQ(tree.min_cut(u, v), fresh.min_cut(u, v))
          << "pair " << u << "," << v;
    }
  }

  // Any base mutation invalidates the stamp: the cached call rebuilds and
  // the rebuilt tree matches a fresh construction on the edited network.
  net.set_edge_base_cap(0, edges[0].cap + 5);
  const std::size_t flows_before = net.flows_run();
  EXPECT_TRUE(gomory_hu_from_arena_cached(net, nullptr, tree, stamp));
  EXPECT_GT(net.flows_run(), flows_before);
  const GomoryHuTree edited = gomory_hu_from_arena(net);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      EXPECT_EQ(tree.min_cut(u, v), edited.min_cut(u, v));
    }
  }

  // An alive-mask change alone (same network version) also rebuilds.
  std::vector<char> alive(n, 1);
  alive[n - 1] = 0;
  net.disable_vertex(static_cast<std::uint32_t>(n - 1));
  EXPECT_TRUE(gomory_hu_from_arena_cached(net, &alive, tree, stamp));
  EXPECT_FALSE(gomory_hu_from_arena_cached(net, &alive, tree, stamp));
}

TEST(GomoryHu, IncrementalContractUpdateMatchesScratchRebuild) {
  // Randomized residual-round simulation of the odd-set separator's
  // contraction pattern (Lemma 25): a special node s carries each vertex's
  // clamped deficiency, every round kills a random vertex set and
  // restitutes each crossing q-edge's capacity onto the surviving
  // endpoint's s-edge. The incremental replay must (a) leave a tree whose
  // ALL-PAIRS min-cut values equal a from-scratch Gusfield build — parents
  // may legitimately differ, both are valid Gusfield executions — and
  // (b) when the exact-compensation certificate held, run strictly fewer
  // max-flows than the alive-1 a full rebuild costs.
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(900 + trial);
    const std::size_t n = 18 + 3 * trial;  // includes the special node
    const auto s = static_cast<std::uint32_t>(n - 1);
    std::vector<ArenaEdge> edges;
    std::vector<std::int64_t> deficiency(n, 0);
    for (std::uint32_t v = 0; v < s; ++v) {
      // Negative initial deficiencies (clamped to a 0-cap s-edge) mirror
      // the separator's q_hat - sum q and exercise the inexact fallback.
      deficiency[v] = static_cast<std::int64_t>(rng.uniform(7)) - 2;
      edges.push_back(
          ArenaEdge{v, s, std::max<std::int64_t>(deficiency[v], 0)});
    }
    for (std::size_t e = 0; e < 3 * n; ++e) {
      const auto u = static_cast<std::uint32_t>(rng.uniform(s));
      const auto v = static_cast<std::uint32_t>(rng.uniform(s));
      if (u == v) continue;
      edges.push_back(ArenaEdge{std::min(u, v), std::max(u, v),
                                static_cast<std::int64_t>(1 + rng.uniform(6))});
    }
    aggregate_parallel_edges(edges);
    FlowArena net;
    net.build(n, edges);
    std::vector<std::size_t> s_edge(n, 0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].v == s) s_edge[edges[e].u] = e;
    }

    std::vector<char> alive(n, 1);
    GomoryHuTree tree;
    GomoryHuStamp stamp;
    EXPECT_TRUE(gomory_hu_from_arena_cached(net, &alive, tree, stamp));
    std::size_t alive_count = n;

    for (int round = 0; round < 4 && alive_count > 8; ++round) {
      GomoryHuContraction delta;
      delta.s_node = s;
      std::vector<char> dead(n, 0);
      for (std::uint32_t v = 0; v < s; ++v) {
        if (alive[v] && rng.uniform(5) == 0) dead[v] = 1;
      }
      // At least one contraction per round, never the special node.
      if (std::find(dead.begin(), dead.end(), char{1}) == dead.end()) {
        for (std::uint32_t v = 0; v < s; ++v) {
          if (alive[v]) {
            dead[v] = 1;
            break;
          }
        }
      }
      // Restitution: every live q-edge with exactly one dead endpoint
      // moves its capacity onto the survivor's s-edge (clamped at 0).
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const std::uint32_t u = edges[e].u;
        const std::uint32_t v = edges[e].v;
        if (v == s) continue;
        if (!alive[u] || !alive[v] || dead[u] == dead[v]) continue;
        const std::uint32_t keep = dead[u] ? v : u;
        if (deficiency[keep] < 0) delta.exact_compensation = false;
        deficiency[keep] += edges[e].cap;
        net.set_edge_base_cap(s_edge[keep],
                              std::max<std::int64_t>(deficiency[keep], 0));
      }
      for (std::uint32_t v = 0; v < s; ++v) {
        if (!dead[v]) continue;
        net.disable_vertex(v);
        alive[v] = 0;
        --alive_count;
        delta.contracted.push_back(v);
      }

      // Contracting the stamped tree's root forfeits the replay (a
      // documented full-rebuild fallback), so the strict gate below only
      // applies while the root survives.
      const bool root_died = dead[tree.root] != 0;
      const std::size_t flows_before = net.flows_run();
      const std::size_t ran =
          gomory_hu_contract_update(net, &alive, delta, tree, stamp);
      EXPECT_EQ(net.flows_run() - flows_before, ran)
          << "trial " << trial << " round " << round;
      if (delta.exact_compensation && !root_died) {
        // The hot-path gate: strictly fewer flows than a full rebuild.
        EXPECT_LT(ran, alive_count - 1)
            << "trial " << trial << " round " << round;
      }

      const GomoryHuTree scratch = gomory_hu_from_arena(net, &alive);
      for (std::uint32_t u = 0; u < n; ++u) {
        if (!alive[u]) continue;
        for (std::uint32_t v = u + 1; v < n; ++v) {
          if (!alive[v]) continue;
          ASSERT_EQ(tree.min_cut(u, v), scratch.min_cut(u, v))
              << "trial " << trial << " round " << round << " pair " << u
              << "," << v;
        }
      }
    }
    EXPECT_GT(stamp.flows_saved, 0u) << "trial " << trial;
  }
}

TEST(GomoryHu, FromArenaRespectsAliveMask) {
  // Two triangles joined by a light bridge; masking one triangle out must
  // yield the tree of the other alone.
  std::vector<ArenaEdge> edges{{0, 1, 4}, {1, 2, 4}, {0, 2, 4},
                               {2, 3, 1},
                               {3, 4, 4}, {4, 5, 4}, {3, 5, 4}};
  FlowArena net;
  net.build(6, edges);
  for (std::uint32_t v : {3, 4, 5}) net.disable_vertex(v);
  const std::vector<char> alive{1, 1, 1, 0, 0, 0};
  const GomoryHuTree tree = gomory_hu_from_arena(net, &alive);
  EXPECT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.min_cut(0, 1), 8);
  EXPECT_EQ(tree.min_cut(0, 2), 8);
  // Dead vertices are self-rooted singletons.
  for (std::uint32_t v : {3u, 4u, 5u}) {
    EXPECT_EQ(tree.parent[v], v);
    EXPECT_EQ(tree.cut_side(v), std::vector<std::uint32_t>{v});
    EXPECT_EQ(tree.min_cut(0, v), 0);
  }
}

}  // namespace
}  // namespace dp
