// Tests for Dinic max-flow and the Gomory-Hu tree (validated against
// brute-force min cuts on random small graphs).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/dinic.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "util/rng.hpp"

namespace dp {
namespace {

/// Brute-force s-t min cut by enumerating all bipartitions (n <= 16).
std::int64_t brute_min_cut(std::size_t n, const std::vector<Edge>& edges,
                           const std::vector<std::int64_t>& cap,
                           std::uint32_t s, std::uint32_t t) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    if (!(mask >> s & 1) || (mask >> t & 1)) continue;
    std::int64_t cut = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const bool u_in = mask >> edges[e].u & 1;
      const bool v_in = mask >> edges[e].v & 1;
      if (u_in != v_in) cut += cap[e];
    }
    best = std::min(best, cut);
  }
  return best;
}

TEST(Dinic, SimplePath) {
  Dinic d(3);
  d.add_arc(0, 1, 5);
  d.add_arc(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPaths) {
  Dinic d(4);
  d.add_arc(0, 1, 2);
  d.add_arc(1, 3, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 3, 1);
  EXPECT_EQ(d.max_flow(0, 3), 3);
}

TEST(Dinic, UndirectedEdgeBothWays) {
  Dinic d(2);
  d.add_edge(0, 1, 4);
  EXPECT_EQ(d.max_flow(0, 1), 4);
  EXPECT_EQ(d.max_flow(1, 0), 4);  // reusable after reset
}

TEST(Dinic, MinCutSideSeparates) {
  Dinic d(4);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 1);
  d.add_edge(2, 3, 10);
  EXPECT_EQ(d.max_flow(0, 3), 1);
  const auto side = d.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

class GomoryHuParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GomoryHuParam, AllPairsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 5 + seed % 5;  // 5..9
  Graph g = gen::gnm(n, std::min(n * (n - 1) / 2, 2 * n), seed * 17 + 3);
  std::vector<std::int64_t> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform_int(1, 9);

  const GomoryHuTree tree = gomory_hu(n, g.edges(), cap);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t t = s + 1; t < n; ++t) {
      EXPECT_EQ(tree.min_cut(s, t),
                brute_min_cut(n, g.edges(), cap, s, t))
          << "pair (" << s << "," << t << ") seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GomoryHuParam,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(GomoryHu, CutSideIsFundamentalCut) {
  // Path graph: tree should reflect the path cuts.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<std::int64_t> cap{3, 1, 2};
  const GomoryHuTree tree = gomory_hu(4, g.edges(), cap);
  EXPECT_EQ(tree.min_cut(0, 3), 1);
  EXPECT_EQ(tree.min_cut(0, 1), 3);
  // Every cut side must contain its defining vertex.
  for (std::uint32_t v = 1; v < 4; ++v) {
    const auto side = tree.cut_side(v);
    EXPECT_NE(std::find(side.begin(), side.end(), v), side.end());
  }
}

TEST(GomoryHu, DisconnectedGraphZeroCuts) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<std::int64_t> cap{5, 7};
  const GomoryHuTree tree = gomory_hu(4, g.edges(), cap);
  EXPECT_EQ(tree.min_cut(0, 2), 0);
  EXPECT_EQ(tree.min_cut(0, 1), 5);
  EXPECT_EQ(tree.min_cut(2, 3), 7);
}

}  // namespace
}  // namespace dp
