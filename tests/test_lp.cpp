// Tests for the LP module: the simplex solver, the paper's explicit
// relaxations (LP1/LP3/LP10-12), the width measurements of Section 1, and
// the generic PST covering/packing engines (Theorems 5/7).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "lp/formulations.hpp"
#include "lp/pst.hpp"
#include "lp/simplex.hpp"
#include "matching/exact_small.hpp"
#include "test_helpers.hpp"

namespace dp::lp {
namespace {

TEST(Simplex, TextbookInstance) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  DenseLP lp;
  lp.c = {3, 5};
  lp.A = {{1, 0}, {0, 2}, {3, 2}};
  lp.b = {4, 12, 18};
  const SimplexResult result = solve_simplex(lp);
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.value, 36.0, 1e-9);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 6.0, 1e-9);
}

TEST(Simplex, DualValues) {
  DenseLP lp;
  lp.c = {3, 5};
  lp.A = {{1, 0}, {0, 2}, {3, 2}};
  lp.b = {4, 12, 18};
  const SimplexResult result = solve_simplex(lp);
  // Strong duality: b^T dual = optimum.
  double dual_value = 0;
  for (std::size_t i = 0; i < lp.b.size(); ++i) {
    dual_value += lp.b[i] * result.dual[i];
  }
  EXPECT_NEAR(dual_value, result.value, 1e-9);
}

TEST(Simplex, UnboundedDetected) {
  DenseLP lp;
  lp.c = {1};
  lp.A = {{0}};  // no constraint on x
  lp.b = {5};
  EXPECT_EQ(solve_simplex(lp).status, SimplexStatus::kUnbounded);
}

TEST(Simplex, RejectsNegativeRhs) {
  DenseLP lp;
  lp.c = {1};
  lp.A = {{1}};
  lp.b = {-2};
  EXPECT_THROW(solve_simplex(lp), std::invalid_argument);
}

TEST(OddSets, EnumerationRespectsParity) {
  const Capacities b({1, 1, 1, 2});
  const auto sets = enumerate_odd_sets(4, b);
  for (const auto& set : sets) {
    EXPECT_GE(set.size(), 3u);
    std::int64_t bw = 0;
    for (Vertex v : set) bw += b[v];
    EXPECT_EQ(bw % 2, 1);
  }
  // {0,1,2} (b=3 odd), {0,1,3} (4 even), {0,2,3}, {1,2,3} even, {0,1,2,3}=5.
  EXPECT_EQ(sets.size(), 2u);
}

TEST(MatchingLP, TriangleNeedsOddSets) {
  // Unit triangle: bipartite relaxation = 1.5, exact = 1.
  const Graph g = gen::complete(3);
  const Capacities b = Capacities::unit(3);
  const double without =
      lp_optimum(build_matching_lp(g, b, /*include_odd_sets=*/false));
  const double with =
      lp_optimum(build_matching_lp(g, b, /*include_odd_sets=*/true));
  EXPECT_NEAR(without, 1.5, 1e-9);
  EXPECT_NEAR(with, 1.0, 1e-9);
}

TEST(MatchingLP, PaperTriangleExample) {
  // Paper Section 1: unit triangle + light apex edge (weight 10*eps). The
  // bipartite relaxation puts 1/2 on every triangle edge (value 3/2); the
  // integral optimum is 1 + 10*eps; odd sets close the gap exactly.
  const double eps = 0.01;
  const Graph g = gen::weighted_triangle_example(10.0 * eps);
  const Capacities b = Capacities::unit(4);
  const double without = lp_optimum(build_matching_lp(g, b, false));
  const double with = lp_optimum(build_matching_lp(g, b, true));
  const double integral = exact_matching_weight_small(g);
  EXPECT_NEAR(without, 1.5, 1e-9);
  EXPECT_NEAR(integral, 1.0 + 10.0 * eps, 1e-9);
  EXPECT_NEAR(with, integral, 1e-9);
  EXPECT_GT(without, with + 0.5 - 10.0 * eps - 1e-9);
}

class MatchingLPParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingLPParam, OddSetLPMatchesIntegralOptimum) {
  // With all odd-set constraints the matching LP is exact (integral) for
  // b = 1 (Edmonds); verify against the bitmask DP.
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(7, 0.5, seed + 60);
  if (g.num_edges() == 0) return;
  const Capacities b = Capacities::unit(7);
  const double lp_value = lp_optimum(build_matching_lp(g, b, true));
  EXPECT_NEAR(lp_value, test::opt_weight(g), 1e-7) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MatchingLPParam,
                         ::testing::Range<std::uint64_t>(0, 15));

class PenaltyLPParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PenaltyLPParam, LP3EqualsLP1Unweighted) {
  // The paper: the penalty formulation LP3 does not increase the optimum
  // over LP1 for w = 1.
  const std::uint64_t seed = GetParam();
  Graph g = test::small_random_graph(7, 0.45, seed + 200);
  if (g.num_edges() == 0) return;
  gen::weight_unit(g);
  const Capacities b = Capacities::unit(7);
  const double lp1 = lp_optimum(build_matching_lp(g, b, true));
  const double lp3 = lp_optimum(build_penalty_lp_unweighted(g, b));
  EXPECT_NEAR(lp3, lp1, 1e-7) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PenaltyLPParam,
                         ::testing::Range<std::uint64_t>(0, 12));

class LayeredLPParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayeredLPParam, Theorem23Sandwich) {
  // betaHat <= betaTilde <= (1+eps) betaHat where betaTilde is the layered
  // penalty optimum (LP10/LP12) and betaHat the exact LP (LP11/LP6).
  const std::uint64_t seed = GetParam();
  const double eps = 1.0 / 16.0;
  Graph base = test::small_random_graph(6, 0.5, seed + 300);
  if (base.num_edges() == 0) return;
  // Discretize weights to powers of (1+eps) as Theorem 23 requires.
  Graph g(base.num_vertices());
  for (const Edge& e : base.edges()) {
    const int k = static_cast<int>(std::floor(
        std::log(e.w) / std::log1p(eps)));
    g.add_edge(e.u, e.v, std::pow(1.0 + eps, std::max(0, k)));
  }
  const Capacities b = Capacities::unit(6);
  const double beta_hat = lp_optimum(build_matching_lp(g, b, true));
  const double beta_tilde =
      lp_optimum(build_layered_penalty_lp(g, b, eps));
  EXPECT_GE(beta_tilde, beta_hat - 1e-7) << "seed " << seed;
  EXPECT_LE(beta_tilde, (1.0 + eps) * beta_hat + 1e-7) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LayeredLPParam,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Width, PenaltyBoundedStandardGrows) {
  // The paper's Section 1 claim: the standard dual LP2 has width that grows
  // with the budget beta (~n), while the penalty dual LP4 has width <= 6
  // independent of everything (our tighter accounting gives exactly 3).
  Graph g = gen::complete(7);
  gen::weight_unit(g);
  const Capacities b = Capacities::unit(7);
  const WidthReport report = measure_dual_widths(g, b, /*beta=*/6.0);
  EXPECT_LE(report.penalty_width, 6.0 + 1e-6);
  EXPECT_GT(report.standard_width, report.penalty_width);
  // Standard width scales linearly with beta; penalty width does not move.
  const WidthReport bigger = measure_dual_widths(g, b, 12.0);
  EXPECT_NEAR(bigger.standard_width, 2.0 * report.standard_width, 1e-6);
  EXPECT_NEAR(bigger.penalty_width, report.penalty_width, 1e-6);
}

TEST(RowWidth, UnboundedWithoutConstraints) {
  EXPECT_TRUE(std::isinf(
      row_width({1.0}, 1.0, {{0.0}}, {1.0})));
}

// ---- PST engines -----------------------------------------------------------

/// Covering toy: decide {x_l >= 1 for all l, x in simplex scaled by budget}.
/// Oracle: put the whole budget on the row with the largest multiplier.
CoveringProblem simple_covering(std::size_t m, double budget, double eps) {
  CoveringProblem problem;
  problem.c.assign(m, 1.0);
  problem.rho = budget;  // Ax <= budget * c on the polytope
  problem.eps = eps;
  // Start from a strictly-infeasible point (lambda_0 = 0.1) so the engine
  // actually has to iterate.
  problem.initial.x.assign(m, 0.1);
  problem.initial.ax = problem.initial.x;
  problem.oracle = [m, budget, eps](const std::vector<double>& u)
      -> std::optional<OraclePoint> {
    std::size_t best = 0;
    for (std::size_t l = 1; l < m; ++l) {
      if (u[l] > u[best]) best = l;
    }
    OraclePoint point;
    point.x.assign(m, 0.0);
    point.ax.assign(m, 0.0);
    point.x[best] = budget;
    point.ax[best] = budget;
    // Feasible iff budget covers the u-weighted demand.
    double u_sum = 0;
    for (double ul : u) u_sum += ul;
    if (u[best] * budget < (1.0 - eps / 2.0) * u_sum) return std::nullopt;
    return point;
  };
  return problem;
}

TEST(PstCovering, FeasibleWhenBudgetSuffices) {
  // m rows, budget m*(1+margin): each row can get > 1.
  const std::size_t m = 8;
  const CoveringResult result =
      fractional_covering(simple_covering(m, 1.5 * m, 0.1));
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(result.lambda, 1.0 - 3.0 * 0.1);
  EXPECT_GT(result.oracle_calls, 0u);
}

TEST(PstCovering, InfeasibleWhenBudgetTooSmall) {
  const std::size_t m = 8;
  const CoveringResult result =
      fractional_covering(simple_covering(m, 0.5 * m, 0.1));
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.certificate.empty());
}

TEST(PstCovering, IterationsScaleWithWidth) {
  const std::size_t m = 6;
  const CoveringResult narrow =
      fractional_covering(simple_covering(m, 1.2 * m, 0.15));
  CoveringProblem wide_problem = simple_covering(m, 1.2 * m, 0.15);
  wide_problem.rho *= 8;  // pretend the width is 8x worse
  const CoveringResult wide = fractional_covering(wide_problem);
  EXPECT_TRUE(narrow.feasible);
  EXPECT_TRUE(wide.feasible);
  EXPECT_GT(wide.oracle_calls, narrow.oracle_calls);
}

TEST(PstPacking, FindsFeasiblePoint) {
  // Pack mass <= 1 per row; polytope allows spreading budget across rows.
  const std::size_t m = 6;
  PackingProblem problem;
  problem.d.assign(m, 1.0);
  problem.rho = 4.0;
  problem.delta = 0.1;
  problem.initial.x.assign(m, 0.0);
  problem.initial.ax.assign(m, 0.0);
  // Start violated on row 0.
  problem.initial.x[0] = 4.0;
  problem.initial.ax[0] = 4.0;
  problem.oracle = [m](const std::vector<double>& z)
      -> std::optional<OraclePoint> {
    // Minimize z^T Ap x over the simplex of total mass m/2: put everything
    // on the row with the smallest multiplier.
    std::size_t best = 0;
    for (std::size_t r = 1; r < m; ++r) {
      if (z[r] < z[best]) best = r;
    }
    OraclePoint point;
    point.x.assign(m, 0.0);
    point.ax.assign(m, 0.0);
    point.x[best] = static_cast<double>(m) / 2.0;
    point.ax[best] = static_cast<double>(m) / 2.0;
    return point;
  };
  const PackingResult result = fractional_packing(problem);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.lambda, 1.0 + 6.0 * problem.delta + 1e-9);
}

TEST(PstMultipliers, ShiftInvariantAndOrdered) {
  const std::vector<double> ax{1.0, 0.5, 2.0};
  const std::vector<double> c{1.0, 1.0, 1.0};
  const auto u = covering_multipliers(ax, c, 10.0);
  // Least covered row gets the largest multiplier.
  EXPECT_GT(u[1], u[0]);
  EXPECT_GT(u[0], u[2]);
  const auto z = packing_multipliers(ax, c, 10.0);
  // Most violated row gets the largest multiplier.
  EXPECT_GT(z[2], z[0]);
  EXPECT_GT(z[0], z[1]);
}

}  // namespace
}  // namespace dp::lp
