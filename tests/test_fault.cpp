// Tests for the fault-tolerant solve (util/fault, core/checkpoint, the
// solver's degradation contract): deterministic injection, typed errors,
// retry transparency (a faulty run's SolverResult is bitwise identical to
// the fault-free run while the meter honestly charges the recovery),
// checkpoint round-trip/corruption, kill-after-round-k resume identity
// across all substrates and thread counts, and the all-or-nothing
// publication of the edge stream's shuffled-order cache under mid-pass
// death.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "stream/edge_stream.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace dp::core {
namespace {

SolverOptions base_options() {
  SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 101;
  opt.max_outer_rounds = 3;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph test_graph() {
  Graph g = gen::gnm(120, 900, 511);
  gen::weight_uniform(g, 1.0, 12.0, 512);
  return g;
}

FaultPlan noisy_plan() {
  // Rates well above the 1% floor: a three-round solve has only a handful
  // of passes / task executions, so low rates would often draw zero
  // failures and the recovery path would go unexercised.
  FaultPlan plan;
  plan.config.seed = 0xbeef;
  plan.config.stream_pass_rate = 0.40;
  plan.config.mapper_rate = 0.25;
  plan.config.reducer_rate = 0.15;
  plan.retry.max_attempts = 8;
  plan.retry.backoff_base_us = 0;  // accounting only, no sleeping
  return plan;
}

/// Everything the algorithm computes must be equal bitwise (the
/// cross-substrate contract of tests/test_substrate.cpp, reused for
/// faulty and resumed runs).
void expect_same_result(const SolverResult& a, const SolverResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.certified_ratio, b.certified_ratio) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
  EXPECT_EQ(a.beta, b.beta) << label;
  EXPECT_EQ(a.outer_rounds, b.outer_rounds) << label;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].round, b.history[r].round) << label;
    EXPECT_EQ(a.history[r].lambda, b.history[r].lambda) << label;
    EXPECT_EQ(a.history[r].beta, b.history[r].beta) << label;
    EXPECT_EQ(a.history[r].best_value, b.history[r].best_value) << label;
    EXPECT_EQ(a.history[r].stored_edges, b.history[r].stored_edges) << label;
    EXPECT_EQ(a.history[r].oracle_calls, b.history[r].oracle_calls) << label;
  }
  ASSERT_EQ(a.b_matching.num_edges(), b.b_matching.num_edges()) << label;
  for (EdgeId e = 0; e < a.b_matching.num_edges(); ++e) {
    ASSERT_EQ(a.b_matching.multiplicity(e), b.b_matching.multiplicity(e))
        << label << " edge " << e;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector / RetryPolicy determinism.

TEST(FaultInjector, DecisionsArePureFunctionsOfSeedAndCounters) {
  FaultConfig config;
  config.seed = 77;
  config.stream_pass_rate = 0.3;
  config.mapper_rate = 0.1;
  const FaultInjector a(config);
  const FaultInjector b(config);
  int fails = 0;
  for (std::uint64_t pass = 0; pass < 200; ++pass) {
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      const bool fa =
          a.should_fail(FaultSite::kStreamPass, pass, 0, attempt);
      EXPECT_EQ(fa, b.should_fail(FaultSite::kStreamPass, pass, 0, attempt));
      fails += fa ? 1 : 0;
      EXPECT_EQ(a.fail_offset(FaultSite::kStreamPass, pass, 0, attempt, 900),
                b.fail_offset(FaultSite::kStreamPass, pass, 0, attempt, 900));
      EXPECT_LT(a.fail_offset(FaultSite::kStreamPass, pass, 0, attempt, 900),
                900u);
    }
  }
  // ~30% of 600 draws: loose two-sided bound, deterministic given the seed.
  EXPECT_GT(fails, 100);
  EXPECT_LT(fails, 300);

  // Different seed, different schedule (with overwhelming probability
  // SOME of the 600 decisions differ).
  FaultConfig other = config;
  other.seed = 78;
  const FaultInjector c(other);
  bool any_diff = false;
  for (std::uint64_t pass = 0; pass < 200 && !any_diff; ++pass) {
    any_diff = a.should_fail(FaultSite::kStreamPass, pass, 0, 0) !=
               c.should_fail(FaultSite::kStreamPass, pass, 0, 0);
  }
  EXPECT_TRUE(any_diff);

  // Disabled injector never fails.
  const FaultInjector off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.should_fail(FaultSite::kStreamPass, 0, 0, 0));
}

TEST(FaultInjector, ScriptedFaultsFireExactly) {
  FaultConfig config;
  config.scripted.push_back({FaultSite::kMapperShard, 2, 5, 0});
  config.scripted.push_back({FaultSite::kReducerTask, 1, 9, kEveryAttempt});
  const FaultInjector inj(config);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.should_fail(FaultSite::kMapperShard, 2, 5, 0));
  EXPECT_FALSE(inj.should_fail(FaultSite::kMapperShard, 2, 5, 1));  // retry ok
  EXPECT_FALSE(inj.should_fail(FaultSite::kMapperShard, 2, 6, 0));
  EXPECT_FALSE(inj.should_fail(FaultSite::kStreamPass, 2, 5, 0));
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_TRUE(inj.should_fail(FaultSite::kReducerTask, 1, 9, attempt));
  }
}

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndOptional) {
  FaultConfig config;
  config.stream_pass_rate = 1.0;
  const FaultInjector inj(config);

  RetryPolicy quiet;  // default base 0: no sleeping at all
  EXPECT_EQ(quiet.delay_us(inj, FaultSite::kStreamPass, 0, 0, 0), 0u);

  RetryPolicy policy;
  policy.backoff_base_us = 100;
  policy.backoff_jitter = 0.25;
  policy.backoff_cap_us = 1000;
  const std::uint64_t d0 = policy.delay_us(inj, FaultSite::kStreamPass, 3, 0, 0);
  const std::uint64_t d1 = policy.delay_us(inj, FaultSite::kStreamPass, 3, 0, 1);
  EXPECT_EQ(d0, policy.delay_us(inj, FaultSite::kStreamPass, 3, 0, 0));
  EXPECT_GE(d0, 75u);  // 100 * (1 - 0.25)
  EXPECT_LE(d0, 125u);
  EXPECT_GE(d1, 150u);  // doubled base, same jitter band
  EXPECT_LE(d1, 250u);
  // Exponential growth clamps at the cap.
  EXPECT_EQ(policy.delay_us(inj, FaultSite::kStreamPass, 3, 0, 12), 1000u);
}

TEST(RetryPolicy, BackoffSleepsOnTheInstalledClock) {
  // The backoff rides the Clock seam (util/clock): tests install a
  // FakeClock and the whole schedule runs on scripted time — zero real
  // sleeping, and the slept total equals the deterministic delays exactly.
  FaultConfig config;
  config.stream_pass_rate = 1.0;
  const FaultInjector inj(config);

  FakeClock clock;
  RetryPolicy policy;
  policy.backoff_base_us = 200;
  policy.backoff_cap_us = 10000;
  policy.clock = &clock;

  std::uint64_t expected = 0;
  for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
    expected += policy.delay_us(inj, FaultSite::kStreamPass, 5, 1, attempt);
    policy.backoff(inj, FaultSite::kStreamPass, 5, 1, attempt);
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(clock.total_slept_us(), expected);
  EXPECT_EQ(clock.now_us(), expected);

  // Base 0 still sleeps nothing regardless of the clock.
  RetryPolicy quiet;
  quiet.clock = &clock;
  quiet.backoff(inj, FaultSite::kStreamPass, 5, 1, 0);
  EXPECT_EQ(clock.total_slept_us(), expected);
}

// ---------------------------------------------------------------------------
// Typed error hierarchy.

TEST(SolverErrors, HierarchyAndContextFormatting) {
  const SubstrateFault fault("pass died", {"stream.pass", 3, 1});
  EXPECT_NE(dynamic_cast<const SolverError*>(&fault), nullptr);
  const std::string what = fault.what();
  EXPECT_NE(what.find("pass died"), std::string::npos);
  EXPECT_NE(what.find("stream.pass"), std::string::npos);
  EXPECT_NE(what.find("round=3"), std::string::npos);
  EXPECT_NE(what.find("attempt=1"), std::string::npos);
  EXPECT_EQ(fault.context().site, "stream.pass");
  EXPECT_EQ(fault.context().round, 3u);
  EXPECT_EQ(fault.context().attempt, 1u);

  // Context-free errors format without the bracket suffix.
  const ConfigError plain("bad eps");
  EXPECT_STREQ(plain.what(), "bad eps");

  // All three leaf types are SolverErrors (catchable as one family).
  EXPECT_THROW(throw CheckpointCorrupt("x"), SolverError);
  EXPECT_THROW(throw SubstrateFault("x"), SolverError);
  EXPECT_THROW(throw ConfigError("x"), SolverError);
}

// ---------------------------------------------------------------------------
// Retry transparency: injected faults change the meter, never the result.

TEST(FaultTolerance, StreamingFaultsAreInvisibleToTheResult) {
  const Graph g = test_graph();
  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  access::StreamingSubstrate clean_sub;
  ref_opt.substrate = &clean_sub;
  const SolverResult clean = solve_matching(g, ref_opt);
  const std::size_t clean_passes = clean_sub.meter().passes();
  EXPECT_EQ(clean_sub.meter().faults(), 0u);

  for (const std::size_t threads : {1, 2, 8}) {
    access::StreamingSubstrate faulty_sub;
    SolverOptions opt = base_options();
    opt.oracle.threads = threads;
    opt.substrate = &faulty_sub;
    opt.faults = noisy_plan();
    const SolverResult faulty = solve_matching(g, opt);
    const std::string label = "streaming threads=" + std::to_string(threads);
    expect_same_result(clean, faulty, label);
    EXPECT_EQ(faulty.status, SolverStatus::kComplete) << label;
    // The recovery is visible where it belongs: the meter. Every injected
    // fault re-walked a pass.
    EXPECT_GT(faulty_sub.meter().faults(), 0u) << label;
    EXPECT_EQ(faulty_sub.meter().passes(),
              clean_passes + faulty_sub.meter().faults())
        << label;
  }
}

TEST(FaultTolerance, MapReduceTaskFaultsAreInvisibleToTheResult) {
  const Graph g = test_graph();
  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  access::MapReduceSubstrate clean_sub;
  ref_opt.substrate = &clean_sub;
  const SolverResult clean = solve_matching(g, ref_opt);
  const std::size_t clean_messages = clean_sub.meter().messages();
  EXPECT_EQ(clean_sub.meter().faults(), 0u);

  for (const std::size_t threads : {1, 2, 8}) {
    access::MapReduceSubstrate faulty_sub;
    SolverOptions opt = base_options();
    opt.oracle.threads = threads;
    opt.substrate = &faulty_sub;
    opt.faults = noisy_plan();
    const SolverResult faulty = solve_matching(g, opt);
    const std::string label = "mapreduce threads=" + std::to_string(threads);
    expect_same_result(clean, faulty, label);
    EXPECT_EQ(faulty.status, SolverStatus::kComplete) << label;
    EXPECT_GT(faulty_sub.meter().faults(), 0u) << label;
    // Wasted mapper emissions / reducer re-fetches are charged as shuffle.
    EXPECT_GT(faulty_sub.meter().messages(), clean_messages) << label;
  }
}

TEST(FaultTolerance, InMemorySubstrateHasNoFailingUnit) {
  const Graph g = test_graph();
  access::InMemorySubstrate sub;
  SolverOptions opt = base_options();
  opt.substrate = &sub;
  opt.faults = noisy_plan();
  const SolverResult result = solve_matching(g, opt);
  EXPECT_EQ(result.status, SolverStatus::kComplete);
  EXPECT_EQ(sub.meter().faults(), 0u);
}

// ---------------------------------------------------------------------------
// Graceful degradation on an exhausted retry budget.

TEST(FaultTolerance, ExhaustedStreamingBudgetDegradesGracefully) {
  const Graph g = test_graph();
  access::StreamingSubstrate sub;
  SolverOptions opt = base_options();
  opt.oracle.threads = 2;
  opt.substrate = &sub;
  // Round 1's opening sweep (pass ordinal 1, phase 0) dies on EVERY
  // attempt: round 0 completes, then the budget exhausts.
  opt.faults.config.scripted.push_back(
      {FaultSite::kStreamPass, 1, 0, kEveryAttempt});
  opt.faults.retry.max_attempts = 3;
  const SolverResult result = solve_matching(g, opt);
  EXPECT_EQ(result.status, SolverStatus::kDegraded);
  EXPECT_EQ(result.outer_rounds, 1u);
  EXPECT_NE(result.fault_detail.find("stream.pass"), std::string::npos);
  // Best-so-far primal with a sound certificate, not an exception.
  EXPECT_GT(result.value, 0.0);
  EXPECT_GT(result.lambda, 0.0);
  EXPECT_GT(result.certified_ratio, 0.0);
  EXPECT_GE(result.dual_bound, result.value);
  EXPECT_EQ(sub.meter().faults(), 3u);  // one per attempt
}

TEST(FaultTolerance, ExhaustedMapperBudgetDegradesGracefully) {
  const Graph g = test_graph();
  access::MapReduceSubstrate sub;
  SolverOptions opt = base_options();
  opt.substrate = &sub;
  // The first simulator round's shard-0 mapper dies on every attempt: the
  // solve degrades before ANY sampling round completes and still returns
  // the initial incumbent.
  opt.faults.config.scripted.push_back(
      {FaultSite::kMapperShard, 1, 0, kEveryAttempt});
  opt.faults.retry.max_attempts = 2;
  const SolverResult result = solve_matching(g, opt);
  EXPECT_EQ(result.status, SolverStatus::kDegraded);
  EXPECT_EQ(result.outer_rounds, 0u);
  EXPECT_NE(result.fault_detail.find("mapreduce.mapper"), std::string::npos);
  EXPECT_GT(result.value, 0.0);
  EXPECT_GT(result.certified_ratio, 0.0);
  EXPECT_GE(result.dual_bound, result.value);
}

// ---------------------------------------------------------------------------
// Checkpoint serialization.

RoundCheckpoint sample_checkpoint() {
  RoundCheckpoint ck;
  ck.solver_seed = 101;
  ck.eps = 0.2;
  ck.p = 2.0;
  ck.sparsifiers = 4;
  ck.sample_seed = 0xabcdef;
  ck.n = 7;
  ck.m = 9;
  ck.retained = 8;
  ck.levels = 5;
  ck.next_round = 2;
  ck.outer_rounds = 2;
  ck.oracle_calls = 17;
  ck.best_value = 12.5;
  ck.beta = 0.75;
  ck.best_support = {{0, 1}, {4, 2}};
  ck.scale = 0.375;
  ck.xik = {{3, 0.5}, {1, 0.25}, {34, 1.0 / 3.0}};  // activation order
  ck.xi = {0.5, 0.25, 0, 0, 0, 0, 1.0 / 3.0};
  ck.odd_sets = {OddSetVar{1, {0, 2, 4}, 0.125},
                 OddSetVar{0, {1, 3, 5}, 0.0625}};
  ck.history = {RoundStats{1, 0.5, 0.7, 11.0, 40, 8},
                RoundStats{2, 0.6, 0.75, 12.5, 44, 9}};
  ck.solve_meter.oracle_calls = 17;
  ck.solve_meter.inner_iterations = 8;
  ck.substrate_meter.rounds = 2;
  ck.substrate_meter.passes = 3;
  ck.substrate_meter.stored_edges = 0;
  ck.substrate_meter.peak_edges = 44;
  ck.substrate_meter.messages = 123;
  ck.substrate_meter.faults = 1;
  return ck;
}

TEST(Checkpoint, SerializeDeserializeRoundTrip) {
  const RoundCheckpoint ck = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = ck.serialize();
  const RoundCheckpoint back = RoundCheckpoint::deserialize(bytes);

  EXPECT_EQ(back.solver_seed, ck.solver_seed);
  EXPECT_EQ(back.eps, ck.eps);
  EXPECT_EQ(back.p, ck.p);
  EXPECT_EQ(back.sparsifiers, ck.sparsifiers);
  EXPECT_EQ(back.sample_seed, ck.sample_seed);
  EXPECT_EQ(back.n, ck.n);
  EXPECT_EQ(back.m, ck.m);
  EXPECT_EQ(back.retained, ck.retained);
  EXPECT_EQ(back.levels, ck.levels);
  EXPECT_EQ(back.next_round, ck.next_round);
  EXPECT_EQ(back.outer_rounds, ck.outer_rounds);
  EXPECT_EQ(back.oracle_calls, ck.oracle_calls);
  EXPECT_EQ(back.best_value, ck.best_value);
  EXPECT_EQ(back.beta, ck.beta);
  EXPECT_EQ(back.best_support, ck.best_support);
  EXPECT_EQ(back.scale, ck.scale);
  EXPECT_EQ(back.xik, ck.xik);  // exact doubles AND activation order
  EXPECT_EQ(back.xi, ck.xi);
  ASSERT_EQ(back.odd_sets.size(), ck.odd_sets.size());
  for (std::size_t s = 0; s < ck.odd_sets.size(); ++s) {
    EXPECT_EQ(back.odd_sets[s].level, ck.odd_sets[s].level);
    EXPECT_EQ(back.odd_sets[s].members, ck.odd_sets[s].members);
    EXPECT_EQ(back.odd_sets[s].value, ck.odd_sets[s].value);
  }
  ASSERT_EQ(back.history.size(), ck.history.size());
  for (std::size_t r = 0; r < ck.history.size(); ++r) {
    EXPECT_EQ(back.history[r].round, ck.history[r].round);
    EXPECT_EQ(back.history[r].lambda, ck.history[r].lambda);
    EXPECT_EQ(back.history[r].best_value, ck.history[r].best_value);
  }
  EXPECT_EQ(back.solve_meter.oracle_calls, ck.solve_meter.oracle_calls);
  EXPECT_EQ(back.substrate_meter.messages, ck.substrate_meter.messages);
  EXPECT_EQ(back.substrate_meter.peak_edges, ck.substrate_meter.peak_edges);
  EXPECT_EQ(back.substrate_meter.faults, ck.substrate_meter.faults);
}

TEST(Checkpoint, EveryFlippedByteIsRejected) {
  const std::vector<std::uint8_t> bytes = sample_checkpoint().serialize();
  // Flip one bit of every byte (header AND payload): deserialize must
  // reject each corrupted buffer with CheckpointCorrupt — never crash,
  // never return a half-restored checkpoint.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[pos] ^= 0x40;
    EXPECT_THROW(RoundCheckpoint::deserialize(corrupt), CheckpointCorrupt)
        << "byte " << pos;
  }
  // Truncations at a sample of lengths are rejected too.
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{23},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(RoundCheckpoint::deserialize(prefix), CheckpointCorrupt)
        << "length " << len;
  }
}

// ---------------------------------------------------------------------------
// Kill-after-round-k resume: bitwise identity across substrates & threads.

enum class SubKind { kInMemory, kStreaming, kMapReduce };

TEST(Checkpoint, KillAndResumeIsBitwiseIdenticalEverywhere) {
  const Graph g = test_graph();
  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  ref_opt.pipeline_overlap = false;
  const SolverResult ref = solve_matching(g, ref_opt);  // clean, fault-free
  ASSERT_GT(ref.outer_rounds, 1u);  // the kill point must be interior

  for (const SubKind kind :
       {SubKind::kInMemory, SubKind::kStreaming, SubKind::kMapReduce}) {
    for (const std::size_t threads : {1, 2, 8}) {
      access::InMemorySubstrate in_memory;
      access::StreamingSubstrate streaming;
      access::MapReduceSubstrate map_reduce;
      access::Substrate* sub = kind == SubKind::kInMemory
                                   ? static_cast<access::Substrate*>(&in_memory)
                               : kind == SubKind::kStreaming
                                   ? static_cast<access::Substrate*>(&streaming)
                                   : &map_reduce;
      const std::string label = std::string(sub->name()) + " threads=" +
                                std::to_string(threads);

      // Phase 1: run WITH fault injection, kill after round 1 via the
      // checkpoint hook (serialize through the wire format — the real
      // crash-recovery path).
      SolverOptions opt = base_options();
      opt.oracle.threads = threads;
      opt.substrate = sub;
      opt.faults = noisy_plan();
      std::vector<std::uint8_t> blob;
      opt.on_checkpoint = [&blob](const RoundCheckpoint& ck) {
        if (ck.next_round == 1) {
          blob = ck.serialize();
          return false;  // die here
        }
        return true;
      };
      const SolverResult killed = solve_matching(g, opt);
      EXPECT_EQ(killed.status, SolverStatus::kInterrupted) << label;
      ASSERT_FALSE(blob.empty()) << label;

      // Phase 2: resume from the serialized checkpoint on a FRESH
      // substrate (the dead worker's state is gone), faults still on.
      const RoundCheckpoint ck = RoundCheckpoint::deserialize(blob);
      access::InMemorySubstrate in_memory2;
      access::StreamingSubstrate streaming2;
      access::MapReduceSubstrate map_reduce2;
      access::Substrate* sub2 =
          kind == SubKind::kInMemory
              ? static_cast<access::Substrate*>(&in_memory2)
          : kind == SubKind::kStreaming
              ? static_cast<access::Substrate*>(&streaming2)
              : &map_reduce2;
      SolverOptions resume_opt = base_options();
      resume_opt.oracle.threads = threads;
      resume_opt.substrate = sub2;
      resume_opt.faults = noisy_plan();
      Solver solver(g, resume_opt);
      const SolverResult resumed = solver.solve(ck);

      // The interrupted + resumed faulty run must be bitwise identical to
      // the clean uninterrupted reference.
      expect_same_result(ref, resumed, label);
      EXPECT_EQ(resumed.status, SolverStatus::kComplete) << label;
    }
  }
}

TEST(Checkpoint, ResumeMeterContinuesWhereTheSolveLeftOff) {
  // Fault-free kill/resume: even the meters (solve + substrate, merged
  // into the result) must match the uninterrupted run exactly.
  const Graph g = test_graph();
  access::StreamingSubstrate whole_sub;
  SolverOptions whole_opt = base_options();
  whole_opt.substrate = &whole_sub;
  const SolverResult whole = solve_matching(g, whole_opt);
  ASSERT_GT(whole.outer_rounds, 1u);

  access::StreamingSubstrate kill_sub;
  SolverOptions kill_opt = base_options();
  kill_opt.substrate = &kill_sub;
  std::vector<std::uint8_t> blob;
  kill_opt.on_checkpoint = [&blob](const RoundCheckpoint& ck) {
    if (ck.next_round == 2) {
      blob = ck.serialize();
      return false;
    }
    return true;
  };
  (void)solve_matching(g, kill_opt);
  ASSERT_FALSE(blob.empty());

  const RoundCheckpoint ck = RoundCheckpoint::deserialize(blob);
  access::StreamingSubstrate resume_sub;
  SolverOptions resume_opt = base_options();
  resume_opt.substrate = &resume_sub;
  Solver solver(g, resume_opt);
  const SolverResult resumed = solver.solve(ck);

  expect_same_result(whole, resumed, "streaming meter-resume");
  EXPECT_EQ(resumed.meter.summary(), whole.meter.summary());
  EXPECT_EQ(resume_sub.meter().summary(), whole_sub.meter().summary());
}

TEST(Checkpoint, ResumeRejectsAMismatchedConfiguration) {
  const Graph g = test_graph();
  SolverOptions opt = base_options();
  std::vector<std::uint8_t> blob;
  opt.on_checkpoint = [&blob](const RoundCheckpoint& ck) {
    blob = ck.serialize();
    return false;
  };
  (void)solve_matching(g, opt);
  ASSERT_FALSE(blob.empty());
  const RoundCheckpoint ck = RoundCheckpoint::deserialize(blob);

  SolverOptions wrong_eps = base_options();
  wrong_eps.eps = 0.25;
  EXPECT_THROW(Solver(g, wrong_eps).solve(ck), ConfigError);

  SolverOptions wrong_seed = base_options();
  wrong_seed.seed = 102;
  EXPECT_THROW(Solver(g, wrong_seed).solve(ck), ConfigError);

  // Different instance (edge count) is rejected too.
  Graph other = gen::gnm(120, 901, 513);
  gen::weight_uniform(other, 1.0, 12.0, 514);
  EXPECT_THROW(Solver(other, base_options()).solve(ck), ConfigError);

  // SolverOptions::resume_from routes through the same validation.
  SolverOptions via_options = base_options();
  via_options.eps = 0.25;
  via_options.resume_from = &ck;
  EXPECT_THROW(Solver(g, via_options).solve(), ConfigError);
}

// ---------------------------------------------------------------------------
// Mid-pass death must never publish a partial shuffled-order cache entry.

TEST(FaultTolerance, ShuffledOrderCachePublishesAllOrNothing) {
  Graph g = gen::gnm(150, 1200, 907);
  gen::weight_uniform(g, 1.0, 4.0, 908);
  const EdgeStream stream(g, nullptr);
  const std::size_t m = g.num_edges();

  constexpr int kThreads = 8;
  constexpr int kIterations = 24;
  std::atomic<int> died{0};
  std::atomic<int> completed{0};
  std::atomic<int> broken_passes{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int it = 0; it < kIterations; ++it) {
        // Four seeds raced by all threads; a deterministic subset of the
        // passes dies mid-pass — including first passes, which are the
        // ones that build and publish the cache entry.
        const auto seed = static_cast<std::uint64_t>(it % 4);
        const std::size_t die_at =
            ((tid + it) % 3 == 0)
                ? (static_cast<std::size_t>(tid) * 131 + it * 37) % m
                : ~std::size_t{0};
        std::vector<char> seen(m, 0);
        std::size_t count = 0;
        try {
          std::size_t arrival = 0;
          stream.for_each_pass_shuffled_indexed(
              seed, [&](EdgeId idx, const Edge&) {
                if (arrival++ == die_at) {
                  throw SubstrateFault("mid-pass death", {"test", 0, 0});
                }
                seen[idx] = 1;
                ++count;
              });
          // A completed pass must have visited a FULL permutation: every
          // edge exactly once — a partially built entry would repeat or
          // drop indices.
          bool full = count == m;
          for (std::size_t e = 0; e < m && full; ++e) full = seen[e] != 0;
          if (!full) broken_passes.fetch_add(1);
          completed.fetch_add(1);
        } catch (const SubstrateFault&) {
          died.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_GT(died.load(), 0);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(broken_passes.load(), 0);
}

}  // namespace
}  // namespace dp::core
