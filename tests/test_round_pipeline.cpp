// Tests for the staged round pipeline (core/round_pipeline): the offline
// re-solve overlapped with the inner MW iterations must be bitwise
// equivalent to the sequential stage order — for the whole SolverResult
// (value, lambda, beta, certified ratio, per-round history, meter
// counters) and for 1/2/8 threads — and the offline/merge helpers must
// behave like Algorithm 2 steps 5/6.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "core/round_pipeline.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"

namespace dp::core {
namespace {

SolverOptions pipeline_options(double eps = 0.2) {
  SolverOptions opt;
  opt.eps = eps;
  opt.p = 2.0;
  opt.seed = 97;
  opt.max_outer_rounds = 3;
  opt.sparsifiers_per_round = 4;
  return opt;
}

void expect_bitwise_equal(const SolverResult& a, const SolverResult& b,
                          const char* label) {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.certified_ratio, b.certified_ratio) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
  EXPECT_EQ(a.beta, b.beta) << label;
  EXPECT_EQ(a.outer_rounds, b.outer_rounds) << label;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].round, b.history[r].round) << label;
    EXPECT_EQ(a.history[r].lambda, b.history[r].lambda) << label;
    EXPECT_EQ(a.history[r].beta, b.history[r].beta) << label;
    EXPECT_EQ(a.history[r].best_value, b.history[r].best_value) << label;
    EXPECT_EQ(a.history[r].stored_edges, b.history[r].stored_edges)
        << label;
    EXPECT_EQ(a.history[r].oracle_calls, b.history[r].oracle_calls)
        << label;
  }
  // Meter counters: the per-stage thread-local meters must aggregate to
  // the same totals whatever the thread count or overlap mode.
  EXPECT_EQ(a.meter.rounds(), b.meter.rounds()) << label;
  EXPECT_EQ(a.meter.passes(), b.meter.passes()) << label;
  EXPECT_EQ(a.meter.stored_edges(), b.meter.stored_edges()) << label;
  EXPECT_EQ(a.meter.peak_edges(), b.meter.peak_edges()) << label;
  EXPECT_EQ(a.meter.inner_iterations(), b.meter.inner_iterations())
      << label;
  EXPECT_EQ(a.meter.oracle_calls(), b.meter.oracle_calls()) << label;
  // Separation flow-work counters (incremental Gusfield): the same flows
  // must run — and the same flows be saved — in every execution mode.
  EXPECT_EQ(a.meter.max_flows(), b.meter.max_flows()) << label;
  EXPECT_EQ(a.meter.max_flows_saved(), b.meter.max_flows_saved()) << label;
  EXPECT_EQ(a.meter.gh_full_builds(), b.meter.gh_full_builds()) << label;
  EXPECT_EQ(a.meter.gh_incremental(), b.meter.gh_incremental()) << label;
  EXPECT_EQ(a.meter.gh_tree_reuses(), b.meter.gh_tree_reuses()) << label;
  for (EdgeId e = 0; e < a.b_matching.num_edges(); ++e) {
    ASSERT_EQ(a.b_matching.multiplicity(e), b.b_matching.multiplicity(e))
        << label << " edge " << e;
  }
}

TEST(RoundPipeline, BitwiseIdenticalAcrossThreadsAndOverlap) {
  Graph g = gen::gnm(120, 900, 61);
  gen::weight_uniform(g, 1.0, 12.0, 62);
  // Sequential reference: serial stages, one thread, no cross-round
  // deferral.
  SolverOptions ref_opt = pipeline_options();
  ref_opt.pipeline_overlap = false;
  ref_opt.pipeline_cross_round = false;
  ref_opt.oracle.threads = 1;
  const SolverResult ref = solve_matching(g, ref_opt);
  EXPECT_GT(ref.value, 0.0);
  EXPECT_FALSE(ref.history.empty());

  for (const bool overlap : {false, true}) {
    for (const bool cross_round : {false, true}) {
      for (const std::size_t threads : {1, 2, 8}) {
        SolverOptions opt = pipeline_options();
        opt.pipeline_overlap = overlap;
        opt.pipeline_cross_round = cross_round;
        opt.oracle.threads = threads;
        const SolverResult run = solve_matching(g, opt);
        const std::string label =
            std::string("overlap=") + (overlap ? "on" : "off") +
            " cross_round=" + (cross_round ? "on" : "off") +
            " threads=" + std::to_string(threads);
        expect_bitwise_equal(ref, run, label.c_str());
      }
    }
  }
}

TEST(RoundPipeline, BitwiseIdenticalForBMatching) {
  Graph g = gen::gnm(60, 400, 71);
  gen::weight_uniform(g, 1.0, 8.0, 72);
  const Capacities b = gen::random_capacities(60, 1, 3, 73);
  SolverOptions ref_opt = pipeline_options(0.15);
  ref_opt.pipeline_overlap = false;
  ref_opt.oracle.threads = 1;
  const SolverResult ref = solve_b_matching(g, b, ref_opt);
  for (const std::size_t threads : {2, 8}) {
    SolverOptions opt = pipeline_options(0.15);
    opt.pipeline_overlap = true;
    opt.oracle.threads = threads;
    const SolverResult run = solve_b_matching(g, b, opt);
    const std::string label = "bmatching threads=" + std::to_string(threads);
    expect_bitwise_equal(ref, run, label.c_str());
  }
}

TEST(RoundPipeline, SolveOfflineReportsPositiveSupportOnly) {
  Graph g = gen::gnm(40, 200, 81);
  gen::weight_uniform(g, 1.0, 6.0, 82);
  const Capacities b = Capacities::unit(40);
  const LevelGraph lg(g, b, 0.2);
  MicroOracle oracle(lg, b, OracleConfig{});
  RoundPipelineOptions popt;
  popt.eps = 0.2;
  access::InMemorySubstrate substrate;
  substrate.bind(g, lg, oracle.worker_pool(), popt.grain);
  RoundPipeline pipeline(substrate, lg, b, /*unit_caps=*/true, oracle,
                         popt);

  std::vector<EdgeId> support;
  std::vector<Edge> support_edges;
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    support.push_back(e);
    support_edges.push_back(g.edge(e));
  }
  const OfflineSolution sol = pipeline.solve_offline(support, support_edges);
  ASSERT_FALSE(sol.support.empty());
  // The reported support is exactly the positive-multiplicity edges, and
  // the cached value is the solution's original-weight value.
  double value = 0;
  std::size_t positives = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (sol.bm.multiplicity(e) > 0) {
      ++positives;
      value += static_cast<double>(sol.bm.multiplicity(e)) * g.edge(e).w;
    }
  }
  EXPECT_EQ(sol.support.size(), positives);
  for (EdgeId e : sol.support) EXPECT_GT(sol.bm.multiplicity(e), 0);
  EXPECT_EQ(sol.value, value);

  // merge_offline keeps the better incumbent and raises beta from the
  // normalized (level-weight) value of the support.
  Incumbent inc;
  inc.best = BMatching(g.num_edges());
  inc.beta = 1e-12;
  pipeline.merge_offline(sol, inc);
  EXPECT_EQ(inc.value, sol.value);
  EXPECT_GT(inc.beta, 1e-12);
  // A worse solution must not displace the incumbent.
  OfflineSolution worse;
  worse.bm = BMatching(g.num_edges());
  worse.value = 0;
  const double beta_before = inc.beta;
  pipeline.merge_offline(worse, inc);
  EXPECT_EQ(inc.value, sol.value);
  EXPECT_EQ(inc.beta, beta_before);
}

}  // namespace
}  // namespace dp::core
