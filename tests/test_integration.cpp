// Cross-module integration tests: the full pipelines a user of the library
// would compose — stream -> sparsify -> match, file round trip -> solver,
// MapReduce sharding -> sketches -> connectivity, and the deferred
// sparsifier driving the offline matcher.

#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/solver.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mapreduce/mapreduce.hpp"
#include "matching/approx.hpp"
#include "matching/blossom_weighted.hpp"
#include "sketch/spanning_forest.hpp"
#include "sparsify/cut_sparsifier.hpp"
#include "sparsify/deferred.hpp"
#include "stream/edge_stream.hpp"

namespace dp {
namespace {

TEST(Integration, SparsifyThenMatchKeepsMostWeight) {
  // Matching on a cut sparsifier is NOT guaranteed by theory (the paper
  // stresses this!), but on random graphs the union of a few independent
  // sparsifiers retains a near-optimal matching — which is what the driver
  // exploits via its offline step. Verify the pipeline end to end.
  Graph g = gen::gnm(100, 4000, 3);
  gen::weight_uniform(g, 1.0, 8.0, 4);
  const double opt = max_weight_matching(g).weight(g);

  SparsifierOptions sopt;
  sopt.xi = 0.7;
  sopt.sampling_constant = 1.0;
  // A single sparsifier must be genuinely sparse...
  const auto one = cut_sparsify(g, sopt, 10);
  ASSERT_LT(one.size(), g.num_edges());
  // ... and the union of three still carries a near-optimal matching.
  std::vector<char> keep(g.num_edges(), 0);
  for (std::uint64_t s = 0; s < 3; ++s) {
    for (const auto& kept : cut_sparsify(g, sopt, s + 10)) {
      keep[kept.index] = 1;
    }
  }
  const Graph sub = g.edge_subgraph(keep);
  const double sub_match = max_weight_matching(sub).weight(sub);
  EXPECT_GE(sub_match, 0.85 * opt);
}

TEST(Integration, FileRoundTripThenSolve) {
  Graph g = gen::gnm(40, 300, 5);
  gen::weight_uniform(g, 1.0, 4.0, 6);
  const std::string path = "/tmp/dp_integration_graph.txt";
  write_graph_file(path, g);
  const Graph loaded = read_graph_file(path);
  std::remove(path.c_str());

  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.seed = 7;
  opt.max_outer_rounds = 6;
  const auto a = core::solve_matching(g, opt);
  const auto b = core::solve_matching(loaded, opt);
  EXPECT_DOUBLE_EQ(a.value, b.value);  // identical inputs, identical run
}

TEST(Integration, MapReduceDegreesMatchGraph) {
  const Graph g = gen::gnm(50, 400, 8);
  using mapreduce::KeyValue;
  mapreduce::Simulator sim(mapreduce::Config{.machines = 8});
  std::vector<KeyValue> input;
  for (const Edge& e : g.edges()) {
    input.push_back({e.u, 1});
    input.push_back({e.v, 1});
  }
  const auto out = sim.round(
      input,
      [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) emit.push_back(kv);
      },
      [](std::uint64_t key, const std::vector<std::uint64_t>& values,
         std::vector<KeyValue>& emit) {
        emit.push_back({key, values.size()});
      });
  g.build_adjacency();
  for (const KeyValue& kv : out) {
    EXPECT_EQ(kv.value, g.degree(static_cast<Vertex>(kv.key)));
  }
}

TEST(Integration, SketchForestAgreesWithUnionFind) {
  const Graph g = gen::gnm(200, 700, 9);
  const auto sketch = sketch_spanning_forest(g, 10);
  EXPECT_EQ(sketch.components, num_components(g));
}

TEST(Integration, DeferredSparsifierFeedsOfflineSolver) {
  // The driver's core loop in miniature: deferred sample under promise
  // weights, refine with "exact" multipliers, run the offline matcher on
  // the stored subgraph; the result must be feasible on the full graph.
  Graph g = gen::gnm(80, 1200, 11);
  gen::weight_uniform(g, 1.0, 6.0, 12);
  std::vector<double> promise(g.num_edges(), 1.0);
  DeferredOptions opt;
  opt.xi = 0.3;
  opt.gamma = 1.5;
  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise, opt, 13);
  Graph sub(g.num_vertices());
  std::vector<EdgeId> back;
  for (std::size_t idx : ds.stored_indices()) {
    sub.add_edge(g.edge(static_cast<EdgeId>(idx)).u,
                 g.edge(static_cast<EdgeId>(idx)).v,
                 g.edge(static_cast<EdgeId>(idx)).w);
    back.push_back(static_cast<EdgeId>(idx));
  }
  const Matching local = approx_weighted_matching(sub);
  Matching lifted;
  for (EdgeId e : local.edges()) lifted.add(back[e]);
  EXPECT_TRUE(lifted.is_valid(g));
  EXPECT_GT(lifted.weight(g), 0.0);
}

TEST(Integration, StreamingBaselinesShareOneStream) {
  // All one-pass baselines observe the same stream order and meter exactly
  // one pass each.
  Graph g = gen::gnm(60, 500, 14);
  gen::weight_uniform(g, 1.0, 5.0, 15);
  ResourceMeter meter;
  const auto a = baselines::streaming_greedy_matching(g, &meter);
  const auto b = baselines::paz_schwartzman_matching(g, 0.1, &meter);
  const auto c = baselines::improvement_matching(g, 0.1, &meter);
  EXPECT_EQ(meter.passes(), 3u);
  EXPECT_TRUE(a.is_valid(g));
  EXPECT_TRUE(b.is_valid(g));
  EXPECT_TRUE(c.is_valid(g));
  // Weighted-aware baselines should not lose to blind maximality here.
  EXPECT_GE(b.weight(g), 0.8 * a.weight(g));
}

TEST(Integration, SolverOnSparsifiedInputStaysSound) {
  // Running the solver on a pre-sparsified graph (a common composition)
  // keeps its certificate sound for THAT graph.
  Graph g = gen::gnm(90, 2500, 16);
  gen::weight_uniform(g, 1.0, 7.0, 17);
  SparsifierOptions sopt;
  sopt.xi = 0.3;
  const auto kept = cut_sparsify(g, sopt, 18);
  Graph sub(g.num_vertices());
  for (const auto& s : kept) {
    sub.add_edge(g.edge(s.index).u, g.edge(s.index).v, g.edge(s.index).w);
  }
  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.seed = 19;
  opt.max_outer_rounds = 6;
  const auto result = core::solve_matching(sub, opt);
  const double sub_opt = max_weight_matching(sub).weight(sub);
  EXPECT_GE(result.dual_bound, sub_opt - 1e-6);
  EXPECT_GE(result.value, 0.6 * sub_opt);
}

}  // namespace
}  // namespace dp
