// Tests for the substrate-agnostic access layer (src/access): the full
// solver must produce a bitwise-identical SolverResult (value, lambda,
// beta, certified ratio, history, stored counts) across the in-memory,
// semi-streaming and MapReduce substrates and across 1/2/8 threads, while
// each substrate's ResourceMeter proves its model is respected — streaming
// makes exactly one pass per round iteration with o(m) stored state
// between passes, and MapReduce runs exactly one simulator round per
// sampling round under the reducer memory cap.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"

namespace dp::core {
namespace {

SolverOptions base_options() {
  SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 101;
  opt.max_outer_rounds = 3;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph test_graph() {
  Graph g = gen::gnm(120, 900, 511);
  gen::weight_uniform(g, 1.0, 12.0, 512);
  return g;
}

/// The cross-substrate identity contract: everything the algorithm
/// computes is equal bitwise. (Meters are NOT compared here — the models
/// intentionally count different things.)
void expect_same_result(const SolverResult& a, const SolverResult& b,
                        const char* label) {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.certified_ratio, b.certified_ratio) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
  EXPECT_EQ(a.beta, b.beta) << label;
  EXPECT_EQ(a.outer_rounds, b.outer_rounds) << label;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].round, b.history[r].round) << label;
    EXPECT_EQ(a.history[r].lambda, b.history[r].lambda) << label;
    EXPECT_EQ(a.history[r].beta, b.history[r].beta) << label;
    EXPECT_EQ(a.history[r].best_value, b.history[r].best_value) << label;
    EXPECT_EQ(a.history[r].stored_edges, b.history[r].stored_edges)
        << label;
    EXPECT_EQ(a.history[r].oracle_calls, b.history[r].oracle_calls)
        << label;
  }
  ASSERT_EQ(a.b_matching.num_edges(), b.b_matching.num_edges()) << label;
  for (EdgeId e = 0; e < a.b_matching.num_edges(); ++e) {
    ASSERT_EQ(a.b_matching.multiplicity(e), b.b_matching.multiplicity(e))
        << label << " edge " << e;
  }
}

TEST(Substrate, SolverBitwiseIdenticalAcrossSubstratesAndThreads) {
  const Graph g = test_graph();
  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  ref_opt.pipeline_overlap = false;
  const SolverResult ref = solve_matching(g, ref_opt);  // internal in-memory
  EXPECT_GT(ref.value, 0.0);
  EXPECT_FALSE(ref.history.empty());

  for (const std::size_t threads : {1, 2, 8}) {
    access::InMemorySubstrate in_memory;
    access::StreamingSubstrate streaming;
    access::MapReduceSubstrate map_reduce;
    access::Substrate* const substrates[] = {&in_memory, &streaming,
                                             &map_reduce};
    for (access::Substrate* sub : substrates) {
      SolverOptions opt = base_options();
      opt.oracle.threads = threads;
      opt.substrate = sub;
      const SolverResult run = solve_matching(g, opt);
      const std::string label = std::string(sub->name()) + " threads=" +
                                std::to_string(threads);
      expect_same_result(ref, run, label.c_str());
    }
  }
}

TEST(Substrate, SolverBitwiseIdenticalForBMatching) {
  Graph g = gen::gnm(60, 400, 531);
  gen::weight_uniform(g, 1.0, 8.0, 532);
  const Capacities b = gen::random_capacities(60, 1, 3, 533);
  SolverOptions ref_opt = base_options();
  ref_opt.eps = 0.15;
  ref_opt.oracle.threads = 1;
  const SolverResult ref = solve_b_matching(g, b, ref_opt);
  access::StreamingSubstrate streaming;
  access::MapReduceSubstrate map_reduce;
  access::Substrate* const substrates[] = {&streaming, &map_reduce};
  for (access::Substrate* sub : substrates) {
    SolverOptions opt = base_options();
    opt.eps = 0.15;
    opt.oracle.threads = 2;
    opt.substrate = sub;
    const SolverResult run = solve_b_matching(g, b, opt);
    expect_same_result(ref, run, sub->name());
  }
}

/// Dense instance where the deferred probabilities genuinely thin the
/// stream (strengths well above rho), so the space bounds are exercised
/// rather than saturated.
Graph dense_graph() {
  Graph g = gen::gnm(250, 20000, 611);
  gen::weight_uniform(g, 1.0, 12.0, 612);
  return g;
}

TEST(Substrate, StreamingMetersExactlyOnePassPerRoundIteration) {
  const Graph g = dense_graph();
  access::StreamingSubstrate streaming;
  SolverOptions opt = base_options();
  opt.eps = 0.25;
  opt.substrate = &streaming;
  const SolverResult result = solve_matching(g, opt);
  ASSERT_GT(result.outer_rounds, 0u);

  const ResourceMeter& meter = streaming.meter();
  // One pass per round-loop iteration: each executed sampling round makes
  // exactly one pass (multipliers + draw fused), plus the final stopping /
  // certificate sweep — never more.
  EXPECT_EQ(meter.passes(), result.outer_rounds + 1);
  EXPECT_EQ(meter.rounds(), result.outer_rounds);
  // Between passes the model's state is the sampled incidences only, all
  // released at round merges; the peak must be strictly below storing
  // every (edge, sparsifier) incidence.
  EXPECT_EQ(meter.stored_edges(), 0u);
  EXPECT_GT(meter.peak_edges(), 0u);
  EXPECT_LT(meter.peak_edges(),
            opt.sparsifiers_per_round * g.num_edges());
  // Per-round stored counts are what the peak tracks.
  for (const RoundStats& rs : result.history) {
    EXPECT_LE(rs.stored_edges, meter.peak_edges());
  }
}

TEST(Substrate, MapReduceMetersOneSimulatorRoundPerSamplingRound) {
  const Graph g = dense_graph();

  // Reference run with the derived O(n^{1+1/p}) cap.
  access::MapReduceSubstrate::Config config;
  config.machines = 8;
  config.reducer_memory = 0;  // derive from p
  access::MapReduceSubstrate derived(config);
  SolverOptions opt = base_options();
  opt.eps = 0.25;
  opt.substrate = &derived;
  const SolverResult result = solve_matching(g, opt);
  ASSERT_GT(result.outer_rounds, 0u);

  EXPECT_EQ(derived.simulator_rounds(), result.outer_rounds);
  EXPECT_EQ(derived.meter().rounds(), result.outer_rounds);
  EXPECT_EQ(derived.meter().passes(), result.outer_rounds);
  EXPECT_GT(derived.meter().messages(), 0u);  // real shuffle volume
  EXPECT_EQ(derived.meter().stored_edges(), 0u);
  EXPECT_GT(derived.reducer_memory(), 0u);

  // A cap strictly below m must still admit the run: every reducer (= one
  // sparsifier's support) holds o(m) edges — live enforcement, the model
  // would reject an algorithm shipping all edges to one reducer.
  access::MapReduceSubstrate::Config tight;
  tight.machines = 8;
  tight.reducer_memory = (g.num_edges() * 17) / 20;  // 0.85 m
  access::MapReduceSubstrate capped(tight);
  SolverOptions capped_opt = base_options();
  capped_opt.eps = 0.25;
  capped_opt.substrate = &capped;
  const SolverResult capped_result = solve_matching(g, capped_opt);
  expect_same_result(result, capped_result, "reducer cap below m");

  // A cap below any sparsifier's support must throw (model violation).
  // The error is typed: ReducerMemoryExceeded is-a ConfigError is-a
  // SolverError carrying the reducer site in its context — never a
  // transient fault, never retried.
  access::MapReduceSubstrate::Config broken;
  broken.machines = 8;
  broken.reducer_memory = 1;
  access::MapReduceSubstrate starved(broken);
  SolverOptions starved_opt = base_options();
  starved_opt.eps = 0.25;
  starved_opt.substrate = &starved;
  try {
    solve_matching(g, starved_opt);
    FAIL() << "expected ReducerMemoryExceeded";
  } catch (const ConfigError& err) {
    EXPECT_NE(dynamic_cast<const mapreduce::ReducerMemoryExceeded*>(&err),
              nullptr);
    EXPECT_NE(dynamic_cast<const SolverError*>(&err), nullptr);
    EXPECT_EQ(err.context().site, fault_site_name(FaultSite::kReducerTask));
    EXPECT_NE(std::string(err.what()).find("memory cap"), std::string::npos);
  }
}

TEST(Substrate, MeterThreadCountInvariantPerSubstrate) {
  const Graph g = test_graph();
  for (const bool use_streaming : {false, true}) {
    std::size_t rounds[3];
    std::size_t passes[3];
    std::size_t peaks[3];
    std::size_t slot = 0;
    for (const std::size_t threads : {1, 2, 8}) {
      access::InMemorySubstrate in_memory;
      access::StreamingSubstrate streaming;
      access::Substrate* sub =
          use_streaming ? static_cast<access::Substrate*>(&streaming)
                        : &in_memory;
      SolverOptions opt = base_options();
      opt.oracle.threads = threads;
      opt.substrate = sub;
      solve_matching(g, opt);
      rounds[slot] = sub->meter().rounds();
      passes[slot] = sub->meter().passes();
      peaks[slot] = sub->meter().peak_edges();
      ++slot;
    }
    for (std::size_t s = 1; s < 3; ++s) {
      EXPECT_EQ(rounds[0], rounds[s]);
      EXPECT_EQ(passes[0], passes[s]);
      EXPECT_EQ(peaks[0], peaks[s]);
    }
  }
}

}  // namespace
}  // namespace dp::core
