// Property-based sweeps over randomized instances: invariants that must
// hold for EVERY seed, asserted across wide TEST_P ranges. These complement
// the example-based tests with breadth.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "core/certificate.hpp"
#include "core/dual_state.hpp"
#include "core/initial.hpp"
#include "core/solver.hpp"
#include "core/weight_levels.hpp"
#include "graph/generators.hpp"
#include "lp/formulations.hpp"
#include "matching/approx.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "sparsify/cut_eval.hpp"
#include "sparsify/strength.hpp"
#include "stream/reservoir.hpp"
#include "test_helpers.hpp"

namespace dp {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EverySolverOutputIsAValidMatching) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(30 + seed % 40, 150 + 10 * (seed % 30), seed);
  gen::weight_zipf(g, 0.5 + 0.03 * (seed % 10), seed + 1);
  for (const Matching& m :
       {greedy_matching(g), maximal_matching(g),
        local_search_matching(g, 16, seed),
        baselines::streaming_greedy_matching(g),
        baselines::paz_schwartzman_matching(g, 0.1),
        baselines::improvement_matching(g, 0.1),
        baselines::multipass_matching(g, 0.1, 4),
        baselines::filtering_matching(g, 2.0, seed),
        baselines::sample_and_solve(g, 1.5, seed)}) {
    ASSERT_TRUE(m.is_valid(g)) << "seed " << seed;
  }
}

TEST_P(SeedSweep, WeightOrderingInvariants) {
  // local search >= greedy; multipass >= one-pass improvement; exact >= all.
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(12, 0.45, seed + 1000);
  if (g.num_edges() == 0) return;
  const double exact = test::opt_weight(g);
  const double greedy = greedy_matching(g).weight(g);
  const double local = local_search_matching(g, 32, seed).weight(g);
  const double one_pass =
      baselines::improvement_matching(g, 0.05).weight(g);
  const double multi =
      baselines::multipass_matching(g, 0.05, 8).weight(g);
  EXPECT_GE(local, greedy - 1e-9);
  EXPECT_GE(multi, one_pass - 1e-9);
  EXPECT_GE(exact + 1e-9, local);
  EXPECT_GE(exact + 1e-9, multi);
}

TEST_P(SeedSweep, StrengthsAtLeastOneAndBridgesWeak) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(40, 160, seed + 2000);
  const auto strengths = estimate_strengths(40, g.edges(), seed);
  for (double s : strengths) EXPECT_GE(s, 1.0);
}

TEST_P(SeedSweep, ReservoirIsUniformSize) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(30, 200, seed + 3000);
  EdgeReservoir reservoir(50, seed);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    reservoir.offer(e, g.edge(e));
  }
  EXPECT_EQ(reservoir.sample().size(), 50u);
  EXPECT_EQ(reservoir.stream_length(), g.num_edges());
  // All sampled ids distinct and in range.
  std::vector<char> seen(g.num_edges(), 0);
  for (const auto& [id, e] : reservoir.sample()) {
    ASSERT_LT(id, g.num_edges());
    EXPECT_FALSE(seen[id]);
    seen[id] = 1;
  }
}

TEST_P(SeedSweep, LevelGraphDiscretizationSandwich) {
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(25, 120, seed + 4000);
  gen::weight_zipf(g, 1.0, seed + 4001);
  const double eps = 0.1 + 0.02 * (seed % 5);
  const Capacities b = Capacities::unit(25);
  const core::LevelGraph lg(g, b, eps);
  for (EdgeId e : lg.retained()) {
    const double reconstructed = lg.normalized_weight(e) * lg.scale();
    EXPECT_LE(reconstructed, g.edge(e).w * (1.0 + 1e-9));
    EXPECT_GE(reconstructed * (1.0 + eps) + 1e-9, g.edge(e).w);
  }
}

TEST_P(SeedSweep, DualStateBlendIsConvex) {
  // objective((1-s) A + s B) == (1-s) objective(A) + s objective(B) when
  // the odd-set supports are disjoint, and cover rows are linear always.
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 5000);
  const int L = 3;
  const std::size_t n = 10;
  const Capacities b = Capacities::unit(n);

  core::DualPoint pa, pb;
  for (int i = 0; i < 5; ++i) {
    pa.xik[rng.uniform(n) * L + rng.uniform(L)] = rng.uniform_real(0.1, 2.0);
    pb.xik[rng.uniform(n) * L + rng.uniform(L)] = rng.uniform_real(0.1, 2.0);
  }
  core::DualState sa(n, L), sb(n, L), blended(n, L);
  sa.assign(pa);
  sb.assign(pb);
  blended.assign(pa);
  const double s = rng.uniform_real(0.1, 0.9);
  blended.blend(pb, s);
  // Cover rows are linear in the state.
  for (Vertex u = 0; u + 1 < n; ++u) {
    for (int k = 0; k < L; ++k) {
      const double expect = (1.0 - s) * sa.cover_row(u, u + 1, k) +
                            s * sb.cover_row(u, u + 1, k);
      EXPECT_NEAR(blended.cover_row(u, u + 1, k), expect, 1e-9);
    }
  }
}

TEST_P(SeedSweep, CertificateBoundsExactOptimum) {
  // The explicit extracted certificate must be dual feasible and its
  // objective must upper-bound the exact optimum — for every seed.
  const std::uint64_t seed = GetParam();
  Graph g = gen::gnm(30, 150, seed + 6000);
  gen::weight_uniform(g, 1.0, 9.0, seed + 6001);
  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.seed = seed;
  opt.max_outer_rounds = 5;
  opt.sparsifiers_per_round = 3;
  const auto result = core::solve_matching(g, opt);
  const double exact = max_weight_matching(g).weight(g);
  EXPECT_GE(result.dual_bound, exact - 1e-6) << "seed " << seed;
  EXPECT_GE(result.value, 0.5 * exact) << "seed " << seed;
}

TEST_P(SeedSweep, VerifierAcceptsExactDualRejectsUndercut) {
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(8, 0.5, seed + 7000);
  if (g.num_edges() == 0) return;
  // Trivial feasible dual: x_v = max incident weight.
  OddSetDual dual;
  dual.x.assign(g.num_vertices(), 0.0);
  for (const Edge& e : g.edges()) {
    dual.x[e.u] = std::max(dual.x[e.u], e.w);
    dual.x[e.v] = std::max(dual.x[e.v], e.w);
  }
  EXPECT_TRUE(dual_feasible(g, dual));
  EXPECT_GE(dual_objective(Capacities::unit(g.num_vertices()), dual),
            test::opt_weight(g) - 1e-9);
  // Undercut one endpoint of the max edge: must become infeasible.
  EdgeId heaviest = 0;
  for (EdgeId e = 1; e < g.num_edges(); ++e) {
    if (g.edge(e).w > g.edge(heaviest).w) heaviest = e;
  }
  dual.x[g.edge(heaviest).u] = 0.0;
  dual.x[g.edge(heaviest).v] = 0.0;
  EXPECT_FALSE(dual_feasible(g, dual));
}

TEST_P(SeedSweep, FractionalVerifierMatchesIntegral) {
  const std::uint64_t seed = GetParam();
  const Graph g = test::small_random_graph(10, 0.4, seed + 8000);
  if (g.num_edges() == 0) return;
  const Capacities b = Capacities::unit(10);
  const Matching m = greedy_matching(g);
  FractionalMatching fm;
  fm.y.assign(g.num_edges(), 0.0);
  for (EdgeId e : m.edges()) fm.y[e] = 1.0;
  EXPECT_TRUE(fractional_degrees_feasible(g, b, fm));
  EXPECT_NEAR(fractional_weight(g, fm), m.weight(g), 1e-12);
  // Every odd set constraint holds for an integral matching.
  const auto sets = lp::enumerate_odd_sets(10, b);
  EXPECT_TRUE(violated_odd_sets(g, b, fm, sets).empty());
  // The all-half fractional triangle violates its odd set.
  if (g.num_edges() >= 1) {
    FractionalMatching overfull;
    overfull.y.assign(g.num_edges(), 0.6);
    const auto violated = violated_odd_sets(g, b, overfull, sets);
    // (May be empty if the graph has no odd set with >= 2 internal edges.)
    for (std::size_t s : violated) {
      EXPECT_FALSE(odd_set_constraint_holds(g, b, overfull, sets[s]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Properties, InitialSolutionMaximalPerLevel) {
  // Property of Lemma 12: after construction, every retained edge has at
  // least one endpoint saturated in its level's maximal b-matching, which
  // is exactly what the dual coverage encodes — check via the state.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = gen::gnm(50, 400, seed + 70);
    gen::weight_uniform(g, 1.0, 64.0, seed + 71);
    const Capacities b = gen::random_capacities(50, 1, 3, seed);
    const core::LevelGraph lg(g, b, 0.2);
    const auto init = core::build_initial(lg, b, 2.0, seed);
    core::DualState state(50, lg.num_levels());
    state.assign(init.x0);
    for (EdgeId e : lg.retained()) {
      const Edge& edge = g.edge(e);
      const int k = lg.level(e);
      EXPECT_GE(state.cover_row(edge.u, edge.v, k) + 1e-12,
                init.coverage * lg.level_weight(k))
          << "seed " << seed << " edge " << e;
    }
  }
}

}  // namespace
}  // namespace dp
