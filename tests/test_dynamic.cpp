// Tests for the dynamic-graph substrate (src/dynamic) and the warm-started
// incremental re-solve (Solver::resolve): delta normalization, canonical
// materialization as a pure function of the live edge set, net delta
// reconstruction from the log, the AGM sketch mirror's linearity, resolve
// value/certified-ratio bitwise-equal to a from-scratch solve on the
// post-delta graph at 1/2/8 threads on the in-memory and streaming
// substrates, randomized churn with chained warm starts, the documented
// fallback when a delta moves the level structure, and the typed stale
// rejection of checkpoints cut before a delta — at the Solver layer and at
// the serving layer.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "access/streaming.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dp {
namespace {

using dyn::DynamicBacking;
using dyn::DynamicGraph;
using dyn::DynamicGraphOptions;
using dyn::EdgeDelta;
using dyn::EdgeInsert;
using dyn::EdgeRemove;

// ---------------------------------------------------------------------------
// Delta normalization and the dynamic graph's batch semantics.

TEST(Dynamic, NormalizeDedupsAndDropsSelfLoops) {
  EdgeDelta d;
  d.inserts.push_back({5, 2, 3.0});
  d.inserts.push_back({2, 5, 7.0});  // duplicate key; first insert wins
  d.inserts.push_back({4, 4, 1.0});  // self loop
  d.removes.push_back({9, 1});
  d.removes.push_back({1, 9});  // duplicate remove
  d.removes.push_back({3, 3});  // self loop
  const dyn::NormalizedDelta nd = dyn::normalize(d);
  ASSERT_EQ(nd.inserts.size(), 1u);
  EXPECT_EQ(nd.inserts[0].u, 2u);
  EXPECT_EQ(nd.inserts[0].v, 5u);
  EXPECT_EQ(nd.inserts[0].w, 3.0);
  ASSERT_EQ(nd.remove_keys.size(), 1u);
  EXPECT_EQ(nd.remove_keys[0], dyn::edge_key(9, 1));
  EXPECT_EQ(nd.dropped_self_loops, 2u);
  EXPECT_EQ(nd.duplicate_inserts, 1u);
  EXPECT_EQ(nd.duplicate_removes, 1u);
}

Graph tiny_graph() {
  Graph g(6);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 4.0);
  g.add_edge(4, 5, 5.0);
  return g;
}

TEST(Dynamic, ApplyCountsEffectiveAndPhantomOps) {
  DynamicGraph dg(tiny_graph());
  EXPECT_EQ(dg.generation(), 0u);
  EXPECT_EQ(dg.num_live_edges(), 4u);

  EdgeDelta d;
  d.removes.push_back({0, 1});   // effective remove
  d.removes.push_back({0, 5});   // phantom: never existed
  d.inserts.push_back({1, 2, 3.0});  // duplicate: live at same weight
  d.inserts.push_back({2, 3, 9.0});  // reweight
  d.inserts.push_back({3, 5, 1.5});  // new edge
  const dyn::DeltaSummary s = dg.apply(d);
  EXPECT_EQ(s.generation, 1u);
  EXPECT_EQ(dg.generation(), 1u);
  // Reweight counts on both sides; the duplicate insert on neither.
  EXPECT_EQ(s.inserted, 2u);
  EXPECT_EQ(s.removed, 2u);
  EXPECT_EQ(s.duplicate_inserts, 1u);
  EXPECT_EQ(s.phantom_removes, 1u);
  EXPECT_EQ(dg.num_live_edges(), 4u);  // -1 remove, +1 insert, 1 reweight

  // An all-phantom batch still bumps the generation: the counter counts
  // applied batches, keeping checkpoint identity conservative.
  EdgeDelta phantom;
  phantom.removes.push_back({0, 1});  // already gone
  const dyn::DeltaSummary s2 = dg.apply(phantom);
  EXPECT_EQ(s2.inserted, 0u);
  EXPECT_EQ(s2.removed, 0u);
  EXPECT_EQ(s2.phantom_removes, 1u);
  EXPECT_EQ(dg.generation(), 2u);
}

TEST(Dynamic, ApplyRejectsOutOfRangeEndpointsTyped) {
  DynamicGraph dg(tiny_graph());
  EdgeDelta d;
  d.inserts.push_back({2, 17, 1.0});
  EXPECT_THROW(dg.apply(d), ConfigError);
  EXPECT_EQ(dg.generation(), 0u);  // nothing applied
  EXPECT_EQ(dg.num_live_edges(), 4u);
}

TEST(Dynamic, MaterializeGenerationZeroIsTheBaseGraph) {
  Graph base = tiny_graph();
  DynamicGraph dg{Graph(base)};
  const auto g = dg.materialize();
  ASSERT_EQ(g->num_edges(), base.num_edges());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    EXPECT_EQ(g->edge(e).u, base.edge(e).u);
    EXPECT_EQ(g->edge(e).v, base.edge(e).v);
    EXPECT_EQ(g->edge(e).w, base.edge(e).w);
  }
}

TEST(Dynamic, CanonicalMaterializationIsHistoryIndependent) {
  // Two different churn histories reaching the same live set must produce
  // bitwise-identical graphs (same edge order, endpoints, weights).
  DynamicGraph a(tiny_graph());
  DynamicGraph b(tiny_graph());

  {  // History A: one batch.
    EdgeDelta d;
    d.removes.push_back({2, 3});
    d.inserts.push_back({0, 3, 7.0});
    d.inserts.push_back({1, 4, 2.5});
    a.apply(d);
  }
  {  // History B: the same net effect in three batches, with detours.
    EdgeDelta d1;
    d1.inserts.push_back({1, 4, 99.0});  // wrong weight first
    b.apply(d1);
    EdgeDelta d2;
    d2.removes.push_back({2, 3});
    d2.removes.push_back({1, 4});
    b.apply(d2);
    EdgeDelta d3;
    d3.inserts.push_back({1, 4, 2.5});
    d3.inserts.push_back({0, 3, 7.0});
    b.apply(d3);
  }

  const auto ga = a.materialize();
  const auto gb = b.materialize();
  ASSERT_EQ(ga->num_edges(), gb->num_edges());
  for (EdgeId e = 0; e < ga->num_edges(); ++e) {
    EXPECT_EQ(ga->edge(e).u, gb->edge(e).u);
    EXPECT_EQ(ga->edge(e).v, gb->edge(e).v);
    EXPECT_EQ(ga->edge(e).w, gb->edge(e).w);
  }
}

TEST(Dynamic, DeltaSinceNetsOutCancellingChurn) {
  DynamicGraph dg(tiny_graph());
  EdgeDelta d1;
  d1.removes.push_back({1, 2});
  dg.apply(d1);
  EdgeDelta d2;
  d2.inserts.push_back({1, 2, 3.0});  // re-insert at the original weight
  d2.inserts.push_back({0, 4, 6.0});  // genuinely new
  dg.apply(d2);
  EdgeDelta d3;
  d3.inserts.push_back({2, 3, 8.0});  // reweight (was 4.0)
  dg.apply(d3);

  const EdgeDelta net = dg.delta_since(0);
  // remove+reinsert of (1,2) at the same weight nets to nothing; (0,4) is
  // a net insert; (2,3) is a net reweight = remove + insert.
  ASSERT_EQ(net.removes.size(), 1u);
  EXPECT_EQ(net.removes[0].u, 2u);
  EXPECT_EQ(net.removes[0].v, 3u);
  ASSERT_EQ(net.inserts.size(), 2u);
  EXPECT_EQ(net.inserts[0].u, 0u);
  EXPECT_EQ(net.inserts[0].v, 4u);
  EXPECT_EQ(net.inserts[0].w, 6.0);
  EXPECT_EQ(net.inserts[1].u, 2u);
  EXPECT_EQ(net.inserts[1].v, 3u);
  EXPECT_EQ(net.inserts[1].w, 8.0);
  // From the current generation the delta is empty.
  const EdgeDelta none = dg.delta_since(dg.generation());
  EXPECT_TRUE(none.removes.empty());
  EXPECT_TRUE(none.inserts.empty());
}

// ---------------------------------------------------------------------------
// Sketch mirror: linearity makes churn equal to building from scratch.

TEST(Dynamic, SketchMirrorEqualsFromScratchSketchAfterChurn) {
  Graph base = gen::gnm(40, 120, 811);
  gen::weight_uniform(base, 1.0, 5.0, 812);
  DynamicGraphOptions opt;
  opt.backing = DynamicBacking::kSketch;
  opt.sketch_seed = 31;
  DynamicGraph dg(Graph(base), opt);
  ASSERT_NE(dg.sketch(), nullptr);
  ASSERT_NE(dg.sketch_seed(), nullptr);

  // Churn: remove a few existing edges, insert new ones, include phantom
  // removes and duplicate inserts (which must NOT touch the mirror).
  Rng rng(77);
  for (int batch = 0; batch < 3; ++batch) {
    EdgeDelta d;
    for (int i = 0; i < 4; ++i) {
      const Edge& e = base.edge(static_cast<EdgeId>(
          rng.uniform(static_cast<std::uint64_t>(base.num_edges()))));
      d.removes.push_back({e.u, e.v});
    }
    d.removes.push_back({0, 39});  // phantom with high probability
    for (int i = 0; i < 3; ++i) {
      const auto u = static_cast<Vertex>(rng.uniform(40));
      const auto v = static_cast<Vertex>(rng.uniform(40));
      if (u == v) continue;
      d.inserts.push_back({u, v, 1.0 + static_cast<double>(i)});
    }
    dg.apply(d);
  }

  const auto live = dg.materialize();
  const AgmSketch scratch(*live, *dg.sketch_seed());
  EXPECT_TRUE(*dg.sketch() == scratch);
}

// ---------------------------------------------------------------------------
// Warm-started incremental re-solve.

core::SolverOptions resolve_options() {
  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 424;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph resolve_graph() {
  Graph g = gen::gnm(120, 900, 911);
  gen::weight_uniform(g, 1.0, 12.0, 912);
  return g;
}

/// A churn batch touching k existing edges and inserting k new ones, with
/// a phantom delete and a duplicate insert mixed in.
EdgeDelta churn_batch(const Graph& g, std::uint64_t seed, std::size_t k) {
  Rng rng(seed);
  EdgeDelta d;
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  for (std::size_t i = 0; i < k; ++i) {
    const Edge& e = g.edge(static_cast<EdgeId>(
        rng.uniform(static_cast<std::uint64_t>(g.num_edges()))));
    d.removes.push_back({e.u, e.v});
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    if (u != v) {
      d.inserts.push_back(
          {u, v, 1.0 + static_cast<double>(rng.uniform(11))});
    }
  }
  d.removes.push_back({static_cast<Vertex>(0),
                       static_cast<Vertex>(g.num_vertices() - 1)});
  if (!d.inserts.empty()) d.inserts.push_back(d.inserts.front());
  return d;
}

TEST(Dynamic, ResolveMatchesScratchBitwiseAcrossThreadsAndSubstrates) {
  DynamicGraph dg(resolve_graph());
  const auto pre = dg.materialize();

  // Cold solve on the pre-delta graph produces the warm handle.
  core::SolverOptions copt = resolve_options();
  const core::SolverResult cold = core::solve_matching(*pre, copt);
  ASSERT_NE(cold.warm, nullptr);
  ASSERT_GT(cold.outer_rounds, 0u);
  ASSERT_GT(cold.lambda, 0.0);  // a usable certificate level to re-attain

  // k-edge churn, k ~ 1% of m.
  dg.apply(churn_batch(*pre, 5150, 9));
  const auto post = dg.materialize();
  const EdgeDelta delta = dg.delta_since(0);

  for (const std::size_t threads : {1, 2, 8}) {
    for (const bool use_streaming : {false, true}) {
      access::InMemorySubstrate in_memory;
      access::StreamingSubstrate streaming;

      core::SolverOptions sopt = resolve_options();
      sopt.oracle.threads = threads;
      sopt.substrate = use_streaming
                           ? static_cast<access::Substrate*>(&streaming)
                           : &in_memory;
      sopt.graph_generation = dg.generation();
      const core::SolverResult scratch = core::solve_matching(*post, sopt);

      access::InMemorySubstrate in_memory2;
      access::StreamingSubstrate streaming2;
      core::SolverOptions ropt = resolve_options();
      ropt.oracle.threads = threads;
      ropt.substrate = use_streaming
                           ? static_cast<access::Substrate*>(&streaming2)
                           : &in_memory2;
      ropt.graph_generation = dg.generation();
      core::Solver solver(*post, ropt);
      const core::SolverResult warm = solver.resolve(*cold.warm, delta);

      const std::string label = std::string(use_streaming ? "streaming"
                                                          : "in-memory") +
                                " threads=" + std::to_string(threads);
      EXPECT_TRUE(warm.warm_resolve) << label;
      EXPECT_TRUE(warm.resolve_fallback.empty()) << label;
      // The acceptance contract: value and certified ratio bitwise-equal
      // to the from-scratch solve on the post-delta graph.
      EXPECT_EQ(warm.value, scratch.value) << label;
      EXPECT_EQ(warm.certified_ratio, scratch.certified_ratio) << label;
      EXPECT_EQ(warm.lambda, warm.lambda) << label;  // not NaN
      // o(full-solve): strictly fewer MW rounds than from-scratch, with
      // the saving metered first-class.
      EXPECT_LT(warm.outer_rounds, scratch.outer_rounds) << label;
      EXPECT_GT(warm.meter.saved_rounds(), 0u) << label;
      EXPECT_GT(warm.meter.repaired_rows(), 0u) << label;
    }
  }
}

TEST(Dynamic, ChainedChurnKeepsResolveEqualToScratch) {
  // Interleaved insert/delete churn over several generations; each hop
  // re-solves warm from the PREVIOUS hop's handle and must stay equal to
  // from-scratch, for both backings.
  for (const DynamicBacking backing :
       {DynamicBacking::kDeltaLog, DynamicBacking::kSketch}) {
    DynamicGraphOptions dopt;
    dopt.backing = backing;
    DynamicGraph dg(resolve_graph(), dopt);

    core::SolverOptions copt = resolve_options();
    core::SolverResult prev = core::solve_matching(*dg.materialize(), copt);
    ASSERT_NE(prev.warm, nullptr);
    std::uint64_t prev_gen = dg.generation();

    for (std::uint64_t hop = 0; hop < 3; ++hop) {
      const auto live = dg.materialize();
      dg.apply(churn_batch(*live, 6200 + hop, 6));
      const auto post = dg.materialize();
      const EdgeDelta delta = dg.delta_since(prev_gen);

      core::SolverOptions sopt = resolve_options();
      sopt.graph_generation = dg.generation();
      const core::SolverResult scratch = core::solve_matching(*post, sopt);

      core::SolverOptions ropt = resolve_options();
      ropt.graph_generation = dg.generation();
      core::Solver solver(*post, ropt);
      const core::SolverResult warm = solver.resolve(*prev.warm, delta);

      const std::string label =
          std::string(backing == DynamicBacking::kSketch ? "sketch"
                                                         : "delta-log") +
          " hop=" + std::to_string(hop);
      EXPECT_TRUE(warm.warm_resolve) << label;
      EXPECT_EQ(warm.value, scratch.value) << label;
      EXPECT_EQ(warm.certified_ratio, scratch.certified_ratio) << label;
      // The chained handle keeps the FULL-solve baseline, so savings stay
      // visible on every hop.
      EXPECT_GT(warm.meter.saved_rounds(), 0u) << label;
      ASSERT_NE(warm.warm, nullptr) << label;
      EXPECT_EQ(warm.warm->graph_generation, dg.generation()) << label;
      prev = warm;
      prev_gen = dg.generation();
    }
  }
}

TEST(Dynamic, ResolveFallsBackWhenLevelStructureMoves) {
  DynamicGraph dg(resolve_graph());
  const auto pre = dg.materialize();
  core::SolverOptions copt = resolve_options();
  const core::SolverResult cold = core::solve_matching(*pre, copt);
  ASSERT_NE(cold.warm, nullptr);

  // A delta that moves W* re-maps every level: the stale duals certify
  // nothing, so resolve must fall back to scratch — and say why.
  EdgeDelta d;
  d.inserts.push_back({0, 1, 5000.0});
  dg.apply(d);
  const auto post = dg.materialize();

  core::SolverOptions ropt = resolve_options();
  ropt.graph_generation = dg.generation();
  core::Solver solver(*post, ropt);
  const core::SolverResult warm = solver.resolve(*cold.warm, dg.delta_since(0));
  EXPECT_FALSE(warm.warm_resolve);
  EXPECT_NE(warm.resolve_fallback.find("level structure"), std::string::npos)
      << warm.resolve_fallback;

  core::SolverOptions sopt = resolve_options();
  sopt.graph_generation = dg.generation();
  const core::SolverResult scratch = core::solve_matching(*post, sopt);
  EXPECT_EQ(warm.value, scratch.value);
  EXPECT_EQ(warm.certified_ratio, scratch.certified_ratio);
}

TEST(Dynamic, ResolveFallsBackOnConfigurationChange) {
  DynamicGraph dg(resolve_graph());
  core::SolverOptions copt = resolve_options();
  const core::SolverResult cold = core::solve_matching(*dg.materialize(), copt);
  ASSERT_NE(cold.warm, nullptr);
  dg.apply(churn_batch(*dg.materialize(), 7300, 4));
  const auto post = dg.materialize();

  core::SolverOptions ropt = resolve_options();
  ropt.seed = copt.seed + 1;  // different seed = different identity
  ropt.graph_generation = dg.generation();
  core::Solver solver(*post, ropt);
  const core::SolverResult r = solver.resolve(*cold.warm, dg.delta_since(0));
  EXPECT_FALSE(r.warm_resolve);
  EXPECT_NE(r.resolve_fallback.find("configuration"), std::string::npos);
  EXPECT_GT(r.value, 0.0);
}

// ---------------------------------------------------------------------------
// Stale checkpoints: typed rejection at the solver layer.

TEST(Dynamic, StaleCheckpointRejectedTypedBySolver) {
  const Graph g = resolve_graph();
  core::SolverOptions opt = resolve_options();
  opt.max_outer_rounds = 6;
  std::shared_ptr<const core::RoundCheckpoint> ck;
  opt.on_checkpoint = [&](const core::RoundCheckpoint& c) {
    ck = std::make_shared<core::RoundCheckpoint>(c);
    return false;  // stop after round 1 with a checkpoint in hand
  };
  const core::SolverResult r = core::solve_matching(g, opt);
  ASSERT_EQ(r.status, core::SolverStatus::kInterrupted);
  ASSERT_NE(ck, nullptr);
  EXPECT_EQ(ck->graph_generation, 0u);

  // The same graph SHAPE after a remove+insert delta: n, m and the
  // retained count can all survive unchanged — only the generation says
  // the checkpoint no longer matches. Resume must be a typed ConfigError,
  // never a silent wrong-graph solve.
  core::SolverOptions stale = resolve_options();
  stale.max_outer_rounds = 6;
  stale.graph_generation = 1;
  core::Solver solver(g, stale);
  try {
    solver.solve(*ck);
    FAIL() << "expected ConfigError for stale graph generation";
  } catch (const ConfigError& err) {
    EXPECT_NE(std::string(err.what()).find("stale graph generation"),
              std::string::npos);
    EXPECT_EQ(err.context().site, "solver.resume");
  }

  // Matching generation resumes fine (same graph, generation threaded).
  core::SolverOptions fresh = resolve_options();
  fresh.max_outer_rounds = 6;
  fresh.graph_generation = 0;
  core::Solver ok(g, fresh);
  const core::SolverResult resumed = ok.solve(*ck);
  EXPECT_GT(resumed.outer_rounds, 0u);
}

TEST(Dynamic, CheckpointSerializationCarriesGraphGeneration) {
  const Graph g = resolve_graph();
  core::SolverOptions opt = resolve_options();
  opt.max_outer_rounds = 2;
  opt.graph_generation = 17;
  std::shared_ptr<const core::RoundCheckpoint> ck;
  opt.on_checkpoint = [&](const core::RoundCheckpoint& c) {
    ck = std::make_shared<core::RoundCheckpoint>(c);
    return false;
  };
  core::solve_matching(g, opt);
  ASSERT_NE(ck, nullptr);
  EXPECT_EQ(ck->graph_generation, 17u);
  const std::vector<std::uint8_t> bytes = ck->serialize();
  const core::RoundCheckpoint back = core::RoundCheckpoint::deserialize(bytes);
  EXPECT_EQ(back.graph_generation, 17u);
}

// ---------------------------------------------------------------------------
// Serving layer: apply-delta and incremental-resolve request classes.

TEST(Dynamic, ServiceAppliesDeltasAndResolvesWarm) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = resolve_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(resolve_graph());

  serve::Request solve_req;
  solve_req.type = serve::RequestType::kSolve;
  solve_req.snapshot = snap;
  const serve::Response solved = svc.submit(solve_req).wait();
  ASSERT_EQ(solved.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(solved.generation, 0u);

  // Apply a churn batch through the service.
  const Graph base = resolve_graph();
  serve::Request apply_req;
  apply_req.type = serve::RequestType::kApplyDelta;
  apply_req.snapshot = snap;
  apply_req.delta = std::make_shared<EdgeDelta>(churn_batch(base, 8400, 8));
  const serve::Response applied = svc.submit(apply_req).wait();
  ASSERT_EQ(applied.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(applied.generation, 1u);
  EXPECT_FALSE(applied.certified);
  EXPECT_NE(applied.detail.find("inserted="), std::string::npos);

  // Incremental resolve rides the retained warm handle.
  serve::Request resolve_req;
  resolve_req.type = serve::RequestType::kResolve;
  resolve_req.snapshot = snap;
  const serve::Response resolved = svc.submit(resolve_req).wait();
  ASSERT_EQ(resolved.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(resolved.certified);
  EXPECT_TRUE(resolved.warm_resolve);
  EXPECT_EQ(resolved.generation, 1u);

  // The service's answer equals a direct from-scratch solve on the same
  // post-delta graph (the canonical materialization is a pure function of
  // the live set, so we can rebuild it here).
  DynamicGraph shadow{Graph(base)};
  shadow.apply(*apply_req.delta);
  core::SolverOptions direct = resolve_options();
  direct.graph_generation = 1;
  const core::SolverResult scratch =
      core::solve_matching(*shadow.materialize(), direct);
  EXPECT_EQ(resolved.value, scratch.value);
  EXPECT_EQ(resolved.certified_ratio, scratch.certified_ratio);

  const serve::ServiceStats st = svc.stats();
  EXPECT_EQ(st.deltas_applied, 1u);
  EXPECT_EQ(st.resolves_warm, 1u);
  EXPECT_EQ(st.resolves_scratch, 0u);
}

TEST(Dynamic, ServiceResolveWithoutWarmHandleFallsBackToFullSolve) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = resolve_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(resolve_graph());

  serve::Request resolve_req;
  resolve_req.type = serve::RequestType::kResolve;
  resolve_req.snapshot = snap;
  const serve::Response r = svc.submit(resolve_req).wait();
  ASSERT_EQ(r.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(r.certified);
  EXPECT_FALSE(r.warm_resolve);
  EXPECT_NE(r.detail.find("no warm handle"), std::string::npos);
  EXPECT_EQ(svc.stats().resolves_scratch, 1u);
}

TEST(Dynamic, ServiceRejectsStaleResumeTyped) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = resolve_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(resolve_graph());

  // A checkpoint minted at generation 0 (shape does not matter: the
  // service's guard is the generation counter alone).
  auto ck = std::make_shared<core::RoundCheckpoint>();
  ck->graph_generation = 0;

  serve::Request apply_req;
  apply_req.type = serve::RequestType::kApplyDelta;
  apply_req.snapshot = snap;
  apply_req.delta =
      std::make_shared<EdgeDelta>(churn_batch(resolve_graph(), 9500, 3));
  ASSERT_EQ(svc.submit(apply_req).wait().status, serve::ResponseStatus::kOk);

  serve::Request resume_req;
  resume_req.type = serve::RequestType::kSolve;
  resume_req.snapshot = snap;
  resume_req.resume = ck;
  const serve::Response r = svc.submit(resume_req).wait();
  EXPECT_EQ(r.status, serve::ResponseStatus::kStaleResume);
  EXPECT_FALSE(r.certified);
  EXPECT_EQ(r.generation, 1u);
  EXPECT_NE(r.detail.find("predates"), std::string::npos);
  EXPECT_EQ(svc.stats().stale_resumes, 1u);
  EXPECT_EQ(std::string(serve::response_status_name(
                serve::ResponseStatus::kStaleResume)),
            "stale_resume");
}

}  // namespace
}  // namespace dp
