#!/usr/bin/env python3
"""Diff two BENCH_<tag>.json files and flag regressions.

Every bench binary persists its rows as BENCH_<tag>.json (see
bench/bench_common.hpp). This script compares a baseline file against a
candidate file row by row and reports per-column relative changes. A change
larger than the threshold (default 10%) in the *bad* direction counts as a
regression; the direction is inferred from the column name:

  higher is better:  *_per_sec, speedup, *ratio*, greedy, ps, filtering,
                     sample_solve, dual_primal
  lower is better:   *seconds*, *_err, max_err, stored, frac, oracle_calls,
                     conv_round, total_rounds, p50, p95, p99,
                     sim_rounds_ratio, bytes_per_edge, stall_share,
                     peak_resident

Exact names win over substrings, so sim_rounds_ratio gates lower-is-better
even though generic "*ratio*" columns gate higher-is-better.

Columns with no known direction (n, m, eps, ...) are treated as row keys /
informational and never flagged.

Usage:
  scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
  scripts/bench_compare.py --no-fail ...   # report only, always exit 0

Exit status: 1 if any regression was flagged (unless --no-fail), else 0.
"""

import argparse
import json
import sys

# Exact column names (short names like "ps" must not substring-match
# parameter columns like "eps"). Exact names take precedence over the
# substring rules below, which is how a lower-is-better ratio column
# ("sim_rounds_ratio": executed simulator rounds / sampling rounds) gates
# in the right direction without flipping the higher-is-better ratio /
# speedup columns that the substring rule serves.
EXACT_HIGHER = {"speedup", "greedy", "ps", "filtering", "sample_solve",
                "dual_primal"}
EXACT_LOWER = {"stored", "frac", "max_err", "oracle_calls", "conv_round",
               "total_rounds", "p50", "p95", "p99", "sim_rounds_ratio",
               "bytes_per_edge", "stall_share", "peak_resident"}
# Unambiguous substrings for derived metric names.
SUBSTR_HIGHER = ("_per_sec", "ratio")
SUBSTR_LOWER = ("seconds", "_err")


def direction(column):
    """-1 = lower is better, +1 = higher is better, 0 = informational."""
    name = column.lower()
    if name in EXACT_HIGHER:
        return 1
    if name in EXACT_LOWER:
        return -1
    for pat in SUBSTR_HIGHER:
        if pat in name:
            return 1
    for pat in SUBSTR_LOWER:
        if pat in name:
            return -1
    return 0


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    for key in ("bench", "columns", "rows"):
        if key not in data:
            raise ValueError(f"{path}: missing '{key}'")
    return data


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files and flag regressions.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--no-fail", action="store_true",
                        help="always exit 0, report only")
    parser.add_argument("--columns", default=None,
                        help="comma-separated list of metric columns to "
                             "compare (default: all); useful in CI to gate "
                             "only machine-relative metrics like 'speedup'")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if base["bench"] != cand["bench"]:
        print(f"warning: comparing different benches "
              f"('{base['bench']}' vs '{cand['bench']}')")

    # A metric present in only one snapshot is reported as added/removed
    # (not an error): the common columns still compare, matched by name.
    base_idx = {col: c for c, col in enumerate(base["columns"])}
    cand_idx = {col: c for c, col in enumerate(cand["columns"])}
    removed = [col for col in base["columns"] if col not in cand_idx]
    added = [col for col in cand["columns"] if col not in base_idx]
    for col in removed:
        print(f"removed: [{base['bench']}] column '{col}' is only in the "
              f"baseline; skipping it")
    for col in added:
        print(f"added: [{base['bench']}] column '{col}' is only in the "
              f"candidate; skipping it")
    columns = [col for col in base["columns"] if col in cand_idx]
    if args.columns is not None:
        wanted = {c.strip() for c in args.columns.split(",") if c.strip()}
        columns = [col for col in columns
                   if col in wanted or direction(col) == 0]
    if not columns:
        print("warning: no common columns; nothing to compare")

    rows = min(len(base["rows"]), len(cand["rows"]))
    if len(base["rows"]) != len(cand["rows"]):
        print(f"warning: row counts differ "
              f"({len(base['rows'])} vs {len(cand['rows'])}); "
              f"comparing the first {rows}")

    regressions = 0
    improvements = 0
    for r in range(rows):
        brow, crow = base["rows"][r], cand["rows"][r]
        key = ", ".join(
            f"{col}={brow[base_idx[col]]:g}" for col in columns
            if direction(col) == 0 and base_idx[col] < len(brow))
        for col in columns:
            sense = direction(col)
            bc, cc = base_idx[col], cand_idx[col]
            if sense == 0 or bc >= len(brow) or cc >= len(crow):
                continue
            old, new = brow[bc], crow[cc]
            if old == 0:
                continue
            change = (new - old) / abs(old)
            if abs(change) <= args.threshold:
                continue
            worse = (sense > 0) == (change < 0)
            tag = "REGRESSION" if worse else "improvement"
            if worse:
                regressions += 1
            else:
                improvements += 1
            print(f"{tag}: [{base['bench']}] row {r} ({key}) {col}: "
                  f"{old:g} -> {new:g} ({change:+.1%})")

    print(f"{base['bench']}: {regressions} regression(s), "
          f"{improvements} improvement(s) beyond "
          f"{args.threshold:.0%} across {rows} row(s)")
    return 1 if regressions and not args.no_fail else 0


if __name__ == "__main__":
    sys.exit(main())
