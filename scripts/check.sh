#!/usr/bin/env bash
# Tier-1 verify plus the hot-path micro benchmark and the determinism
# gates.
#
# Configures with DP_WERROR=ON so any -Wall -Wextra warning in src/core is
# a build failure, runs the full test suite through ctest, runs
# bench_micro --quick (which also sanity-checks flat-vs-map agreement and
# refreshes BENCH_micro.json), then bench_runtime (which gates bitwise
# 1/2/8-thread and pipeline-on/off stability and refreshes
# BENCH_runtime.json with the overlap speedup column), bench_substrate
# (which gates the SolverResult bitwise identical across the in-memory /
# streaming / MapReduce access substrates and refreshes
# BENCH_substrate.json), and bench_faults (which gates clean ==
# fault-injected == killed+resumed bitwise across substrates and 1/2/8
# threads and refreshes BENCH_faults.json with the recovery accounting
# and checkpoint-overhead columns), then bench_serve --quick
# (which gates the serving layer's certified-or-typed response invariant
# plus the deadline -> warm-resume bitwise round-trip, and refreshes
# BENCH_serve.json with the latency percentile / shed-rate columns), and
# finally bench_dynamic --quick (which gates the warm re-solve's value and
# certified ratio bitwise-equal to from-scratch after a k-edge delta with
# >= 5x fewer MW rounds and substrate passes, and refreshes
# BENCH_dynamic.json with the rounds/pass-ratio and saved-work columns),
# and bench_outofcore --quick (which gates the file-backed solve bitwise
# identical to in-memory under a resident-edge budget smaller than the
# file plus MapReduce round compression executing fewer simulator rounds,
# and refreshes BENCH_outofcore.json with the bytes-per-edge, prefetch
# hit-rate / stall-share and simulator-round-ratio columns).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# DP_VEC_REPORT leaves the compiler's loop-vectorization report in
# $BUILD_DIR/vec-report.txt (CI archives it as the autovectorization
# audit trail; the hand-tuned exp kernel must show up as vectorized).
cmake -B "$BUILD_DIR" -S . -DDP_WERROR=ON -DDP_VEC_REPORT=ON
cmake --build "$BUILD_DIR" -j"$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS")
"./$BUILD_DIR/bench_micro" --quick
"./$BUILD_DIR/bench_runtime"
"./$BUILD_DIR/bench_substrate"
"./$BUILD_DIR/bench_faults"
"./$BUILD_DIR/bench_serve" --quick
"./$BUILD_DIR/bench_dynamic" --quick
"./$BUILD_DIR/bench_outofcore" --quick
echo "check.sh: OK"
